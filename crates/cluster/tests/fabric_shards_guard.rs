//! `run_auto` fallback behaviour around `ABR_DES_SHARDS` (own test binary:
//! these tests mutate process-global environment variables, so they live
//! alone and run as one sequential test).

use abr_cluster::node::ClusterSpec;
use abr_cluster::program::ScriptProgram;
use abr_cluster::{DesDriver, Step};
use abr_des::SimDuration;
use abr_fabric::FabricSpec;
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};
use std::sync::Arc;

fn programs(n: u32) -> Vec<ScriptProgram> {
    (0..n)
        .map(|rank| {
            ScriptProgram::new(vec![
                Step::Busy(SimDuration::from_us(u64::from(rank % 5) * 20)),
                Step::Reduce {
                    root: 0,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&[f64::from(rank)]),
                },
            ])
        })
        .collect()
}

fn driver(spec: &ClusterSpec) -> DesDriver<Engine, ScriptProgram> {
    let n = spec.len() as u32;
    DesDriver::new(
        spec,
        move |r, ec: EngineConfig| Engine::new(r, n, ec),
        programs(n),
    )
}

#[test]
fn run_auto_guards_and_fallbacks() {
    std::env::set_var("ABR_DES_SHARDS", "2");

    // 1. Sharding requested + contended fabric: fail fast, naming both
    //    knobs, instead of silently picking one.
    let contended = ClusterSpec::heterogeneous(16).with_fabric(FabricSpec::fat_tree(4.0));
    let mut d = driver(&contended);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.run_auto()))
        .expect_err("run_auto accepted ABR_DES_SHARDS with a contended fabric");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("ABR_DES_SHARDS"), "missing knob name: {msg}");
    assert!(msg.contains("ABR_FABRIC"), "missing knob name: {msg}");

    // 2. Sharding requested + order-dependent instrumentation (tracer):
    //    warn and fall back to the sequential executor, producing exactly
    //    the sequential results.
    let flat = ClusterSpec::heterogeneous(16);
    let recorder = abr_trace::RingRecorder::new(16, 1 << 12, abr_trace::TraceClock::Virtual, 7, 0);
    let mut traced = driver(&flat);
    traced.install_tracer(Arc::clone(&recorder) as Arc<dyn abr_trace::Tracer>);
    traced.run_auto(); // must not panic, must fall back
    let mut plain = driver(&flat);
    std::env::remove_var("ABR_DES_SHARDS");
    plain.run();
    assert_eq!(traced.results(), plain.results());
    assert_eq!(traced.packets_delivered, plain.packets_delivered);
    assert!(
        !recorder.snapshot().is_empty(),
        "fallback run did not actually trace"
    );

    // 3. With the variable gone, a contended fabric runs fine (a dense
    //    synchronized burst, so links demonstrably queue).
    let burst = ClusterSpec::heterogeneous(64).with_fabric(FabricSpec::fat_tree(4.0));
    let n = burst.len() as u32;
    let mut d = DesDriver::new(
        &burst,
        move |r, ec: EngineConfig| Engine::new(r, n, ec),
        (0..n)
            .map(|rank| {
                ScriptProgram::new(vec![Step::Reduce {
                    root: 0,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&vec![f64::from(rank); 512]),
                }])
            })
            .collect(),
    );
    d.run_auto();
    assert!(d.network().link_waits() > 0);
}
