//! Tests for the driver's timeline introspection and its guard rails.

use abr_cluster::driver::TimelineEvent;
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{Program, ScriptProgram, Step};
use abr_cluster::DesDriver;
use abr_core::{AbConfig, AbEngine};
use abr_des::meter::CpuCategory;
use abr_des::{SimDuration, SimTime};
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

fn reduce_step(rank: u32) -> Step {
    Step::Reduce {
        root: 0,
        op: ReduceOp::Sum,
        dtype: Datatype::F64,
        data: f64s_to_bytes(&[rank as f64]),
    }
}

fn programs(n: u32, skew_of: impl Fn(u32) -> u64) -> Vec<Box<dyn Program>> {
    (0..n)
        .map(|r| {
            Box::new(ScriptProgram::new(vec![
                Step::Busy(SimDuration::from_us(skew_of(r))),
                reduce_step(r),
                Step::Busy(SimDuration::from_us(300)),
                Step::Barrier,
            ])) as Box<dyn Program>
        })
        .collect()
}

#[test]
fn timeline_is_off_by_default() {
    let spec = ClusterSpec::homogeneous_1000(4);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, 4, ec),
        programs(4, |_| 0),
    );
    d.run();
    assert!(d.timeline().is_none());
}

fn check_invariants(events: &[TimelineEvent], n: usize, end: SimTime) {
    assert!(!events.is_empty());
    for e in events {
        assert!(e.node < n, "node index in range");
        assert!(!e.dur.is_zero(), "zero-length spans are filtered");
        assert!(
            e.start + e.dur <= end + SimDuration::from_us(1),
            "span beyond simulation end: {e:?} vs {end:?}"
        );
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // rank used as value and index
fn timeline_records_all_activity_classes_for_baseline() {
    let spec = ClusterSpec::homogeneous_1000(4);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, 4, ec),
        programs(4, |r| r as u64 * 100),
    )
    .with_timeline();
    d.run();
    let events = d.timeline().unwrap();
    check_invariants(events, 4, d.now());
    let has = |k: CpuCategory| events.iter().any(|e| e.kind == k);
    assert!(has(CpuCategory::Application), "busy loops recorded");
    assert!(has(CpuCategory::Polling), "blocking waits recorded");
    assert!(has(CpuCategory::Protocol), "protocol work recorded");
    assert!(!has(CpuCategory::SignalHandler), "baseline never signals");
    // Timeline totals agree with the meters.
    let results = d.results();
    for node in 0..4usize {
        let tl_poll: f64 = events
            .iter()
            .filter(|e| e.node == node && e.kind == CpuCategory::Polling)
            .map(|e| e.dur.as_us_f64())
            .sum();
        // The meter additionally includes the engine's per-wake poll-entry
        // charges (recorded as protocol spans in the timeline), so allow a
        // small per-wake discrepancy.
        let meter = results[node].cpu_poll_us;
        assert!(
            (tl_poll - meter).abs() < meter * 0.05 + 3.0,
            "node {node}: timeline poll {tl_poll:.1} vs meter {meter:.1}"
        );
    }
}

#[test]
fn timeline_shows_signal_handlers_under_bypass() {
    let spec = ClusterSpec::homogeneous_1000(4);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, 4, ec, AbConfig::default()),
        programs(4, |r| if r == 3 { 250 } else { 0 }),
    )
    .with_timeline();
    d.run();
    let events = d.timeline().unwrap();
    check_invariants(events, 4, d.now());
    // Node 2 (parent of late node 3) must show handler activity and far
    // less polling than the same scenario under the baseline.
    let handler2: f64 = events
        .iter()
        .filter(|e| e.node == 2 && e.kind == CpuCategory::SignalHandler)
        .map(|e| e.dur.as_us_f64())
        .sum();
    assert!(handler2 > 0.0, "node 2 must take a signal for late node 3");
}

#[test]
#[should_panic(expected = "event cap exceeded")]
fn event_cap_guards_against_livelock() {
    let spec = ClusterSpec::homogeneous_1000(2);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, 2, ec),
        (0..2)
            .map(|r| {
                Box::new(ScriptProgram::new(
                    // Enough traffic to exceed a tiny cap.
                    (0..50)
                        .flat_map(|_| [reduce_step(r), Step::Barrier])
                        .collect(),
                )) as Box<dyn Program>
            })
            .collect(),
    )
    .with_max_events(10);
    d.run();
}

#[test]
fn network_counters_track_traffic() {
    let spec = ClusterSpec::homogeneous_1000(4);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, 4, ec),
        programs(4, |_| 0),
    );
    d.run();
    assert!(d.network().packets_carried() > 0);
    assert!(d.network().bytes_carried() > d.network().packets_carried());
    assert_eq!(d.packets_delivered, d.network().packets_carried());
}
