//! Heterogeneity fidelity: CPU classes scale protocol work, PCI classes
//! scale transfers, and the §VI testbed's interlaced host list behaves as
//! the paper describes ("nearly identical results" between the homogeneous
//! halves at equal sizes).

use abr_cluster::microbench::{run_cpu_util, run_latency, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{Program, ScriptProgram, Step};
use abr_cluster::DesDriver;
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

fn reduce_programs(n: u32, elems: usize) -> Vec<Box<dyn Program>> {
    (0..n)
        .map(|r| {
            Box::new(ScriptProgram::new(vec![
                Step::Reduce {
                    root: 0,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&vec![r as f64; elems]),
                },
                Step::Barrier,
            ])) as Box<dyn Program>
        })
        .collect()
}

#[test]
fn slower_cpus_charge_more_protocol_time() {
    let run = |spec: ClusterSpec| {
        let n = spec.len() as u32;
        let mut d = DesDriver::new(
            &spec,
            |r, ec: EngineConfig| Engine::new(r, n, ec),
            reduce_programs(n, 32),
        );
        d.run();
        // Rank 1 is a leaf under root 0 in a 4-rank tree: pure send work.
        d.results()[1].cpu_protocol_us
    };
    let fast = run(ClusterSpec::homogeneous_1000(4));
    let slow = run(ClusterSpec::homogeneous_700(4));
    let ratio = slow / fast;
    assert!(
        (1.3..1.6).contains(&ratio),
        "700MHz/1GHz protocol-CPU ratio {ratio:.2}, expected ~1.43"
    );
}

#[test]
fn homogeneous_halves_agree_like_the_paper_says() {
    // §VI: "we compared it to both of the groups of homogeneous machines
    // separately for system sizes up to 16 nodes and observed nearly
    // identical results."
    let cfg = |spec| CpuUtilConfig {
        iters: 60,
        max_skew_us: 500,
        ..CpuUtilConfig::new(spec, Mode::Baseline)
    };
    let hom7 = run_cpu_util(&cfg(ClusterSpec::homogeneous_700(16))).mean_cpu_us;
    let hom10 = run_cpu_util(&cfg(ClusterSpec::homogeneous_1000(16))).mean_cpu_us;
    let het = run_cpu_util(&cfg(ClusterSpec::heterogeneous(16))).mean_cpu_us;
    // Under dominant skew the class differences wash out: within ~15%.
    let spread = (hom7 - hom10).abs() / hom10;
    assert!(
        spread < 0.15,
        "homogeneous halves diverge: {hom7:.1} vs {hom10:.1}"
    );
    assert!(
        het > hom7.min(hom10) * 0.85 && het < hom7.max(hom10) * 1.15,
        "heterogeneous mix {het:.1} outside the homogeneous band [{hom10:.1}, {hom7:.1}]"
    );
}

#[test]
fn narrow_pci_nodes_slow_large_message_latency() {
    // The 1-GHz nodes' 33MHz/32-bit PCI hurts for kilobyte messages.
    let lat = |spec| {
        run_latency(&LatencyConfig {
            elems: 128,
            iters: 30,
            ..LatencyConfig::new(spec, Mode::Baseline)
        })
        .mean_latency_us
    };
    let wide = lat(ClusterSpec::homogeneous_700(8)); // wide PCI, slow CPU
    let narrow = lat(ClusterSpec::homogeneous_1000(8)); // narrow PCI, fast CPU
    assert!(
        narrow > wide,
        "narrow-PCI cluster should lose on 1KB messages: {narrow:.1} vs {wide:.1}"
    );
}

#[test]
fn small_message_latency_favors_faster_cpus() {
    // At 1 element the PCI term is negligible and host processing wins.
    let lat = |spec| {
        run_latency(&LatencyConfig {
            elems: 1,
            iters: 30,
            ..LatencyConfig::new(spec, Mode::Baseline)
        })
        .mean_latency_us
    };
    let slow_cpu = lat(ClusterSpec::homogeneous_700(8));
    let fast_cpu = lat(ClusterSpec::homogeneous_1000(8));
    assert!(
        fast_cpu < slow_cpu,
        "fast-CPU cluster should win small messages: {fast_cpu:.1} vs {slow_cpu:.1}"
    );
}

#[test]
fn determinism_holds_across_heterogeneous_runs() {
    let run = || {
        let cfg = CpuUtilConfig {
            iters: 30,
            max_skew_us: 700,
            ..CpuUtilConfig::new(
                ClusterSpec::heterogeneous(12),
                Mode::Bypass(abr_core::DelayPolicy::PerProcess {
                    us_per_process: 1.0,
                }),
            )
        };
        let r = run_cpu_util(&cfg);
        (
            format!("{:.9}", r.mean_cpu_us),
            format!("{:.9}", r.p95_us),
            r.signals,
            r.signals_suppressed,
        )
    };
    assert_eq!(run(), run());
}
