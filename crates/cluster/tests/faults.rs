//! Fault-injection equivalence: the same seeded `FaultPlan` must replay
//! identically under the discrete-event driver and the live threaded
//! driver — identical reduction results and identical deterministic
//! reliability counters — and a lossy 32-node sweep must still converge
//! to the fault-free oracle in both bypass and baseline modes.

use abr_cluster::live::run_live_faults;
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{FnProgram, Program, Step, StepCtx};
use abr_cluster::{DesDriver, FaultPlan, RelConfig, RelStats};
use abr_core::{AbConfig, AbEngine};
use abr_faults::{FaultKind, FaultRule, KindSel, LinkSel};
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};

/// Each rank contributes `[rank + 1, 2]`, so the root's sum is
/// `[n(n+1)/2, 2n]` — easy to oracle without running anything.
fn rank_input(rank: u32) -> Vec<f64> {
    vec![rank as f64 + 1.0, 2.0]
}

fn oracle(n: u32) -> Vec<f64> {
    vec![(n * (n + 1)) as f64 / 2.0, 2.0 * n as f64]
}

/// One sum-reduction to root 0 under the DES with `plan` active; returns
/// the root's result vector and the merged reliability counters.
fn des_reduce_with_faults(n: u32, ab: AbConfig, plan: &FaultPlan) -> (Vec<f64>, RelStats) {
    let spec = ClusterSpec::homogeneous_1000(n);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            let mut phase = 0u8;
            Box::new(FnProgram(move |ctx: &mut StepCtx| {
                if phase == 0 {
                    phase = 1;
                    return Step::Reduce {
                        root: 0,
                        op: ReduceOp::Sum,
                        dtype: Datatype::F64,
                        data: f64s_to_bytes(&rank_input(rank)),
                    };
                }
                if rank == 0 {
                    if let Some(d) = ctx.last_data.take() {
                        for v in bytes_to_f64s(&d) {
                            ctx.record("result", v);
                        }
                    }
                }
                Step::Done
            })) as Box<dyn Program>
        })
        .collect();
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, ab.clone()),
        programs,
    );
    d.set_faults(plan, RelConfig::sim_default());
    d.run();
    let rel = d.rel_stats().unwrap_or_default();
    let vals = d.results()[0]
        .obs
        .iter()
        .filter(|o| o.key == "result")
        .map(|o| o.value)
        .collect();
    (vals, rel)
}

/// The same reduction over real threads under `plan`.
fn live_reduce_with_faults(n: u32, plan: &FaultPlan) -> (Vec<f64>, RelStats) {
    let out = run_live_faults(
        &ClusterSpec::homogeneous_1000(n),
        AbConfig::default(),
        plan,
        RelConfig::live_default(),
        |ctx| {
            let data = f64s_to_bytes(&rank_input(ctx.rank()));
            ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data)
                .unwrap()
                .map(|d| bytes_to_f64s(&d))
        },
    );
    let vals = out.results[0].clone().unwrap_or_default();
    (vals, out.rel)
}

/// A deterministic scenario: duplicate the first data packet on link
/// 1 -> 0 and delay the first on link 2 -> 0 (both children of root 0 in
/// the 8-rank binomial tree). Neither fault loses data, so no
/// retransmission fires — but the duplicate must be suppressed exactly
/// once in both drivers, and both must agree on the result.
#[test]
fn des_and_live_replay_identical_dup_and_delay_schedule() {
    let n = 8u32;
    let plan = FaultPlan {
        seed: 0xD1CE,
        rules: vec![
            FaultRule {
                link: LinkSel::Between(1, 0),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::Duplicate { p: 1.0 },
            },
            FaultRule {
                link: LinkSel::Between(2, 0),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::Delay {
                    p: 1.0,
                    extra_ns: 200_000,
                },
            },
        ],
    };
    let (des_vals, des_rel) = des_reduce_with_faults(n, AbConfig::default(), &plan);
    let (live_vals, live_rel) = live_reduce_with_faults(n, &plan);
    assert_eq!(des_vals, oracle(n), "DES result wrong under dup+delay");
    assert_eq!(live_vals, oracle(n), "live result wrong under dup+delay");
    assert_eq!(
        des_rel.duplicates_suppressed, 1,
        "DES must suppress exactly the one injected duplicate: {des_rel:?}"
    );
    assert_eq!(
        live_rel.duplicates_suppressed, 1,
        "live must suppress exactly the one injected duplicate: {live_rel:?}"
    );
    assert_eq!(des_rel.distinct_retransmitted, 0, "{des_rel:?}");
    assert_eq!(live_rel.distinct_retransmitted, 0, "{live_rel:?}");
    assert_eq!(
        des_rel.data_sent, live_rel.data_sent,
        "drivers disagree on packets sent: DES {des_rel:?} vs live {live_rel:?}"
    );
}

/// Drop the first data packet on link 2 -> 0. The rule is scoped to
/// attempt 0, so the timeout-driven retransmission (attempt 1) gets
/// through; both drivers must recover via exactly one distinct
/// retransmitted packet and still produce the oracle result.
#[test]
fn des_and_live_recover_from_identical_drop_schedule() {
    let n = 8u32;
    let plan = FaultPlan {
        seed: 0xD20B,
        rules: vec![FaultRule {
            link: LinkSel::Between(2, 0),
            kinds: KindSel::Any,
            window: None,
            attempt: Some(0),
            fault: FaultKind::Drop { p: 1.0 },
        }],
    };
    let (des_vals, des_rel) = des_reduce_with_faults(n, AbConfig::default(), &plan);
    let (live_vals, live_rel) = live_reduce_with_faults(n, &plan);
    assert_eq!(des_vals, oracle(n), "DES result wrong under drop");
    assert_eq!(live_vals, oracle(n), "live result wrong under drop");
    assert_eq!(
        des_rel.distinct_retransmitted, 1,
        "DES must retransmit the dropped packet once: {des_rel:?}"
    );
    assert_eq!(
        live_rel.distinct_retransmitted, 1,
        "live must retransmit the dropped packet once: {live_rel:?}"
    );
    assert!(des_rel.retransmissions >= 1, "{des_rel:?}");
    assert!(live_rel.retransmissions >= 1, "{live_rel:?}");
    assert_eq!(des_rel.data_sent, live_rel.data_sent);
}

/// 1% seeded loss (drop + duplicate) on 32 nodes: both the bypass and
/// baseline engines must still converge to the fault-free oracle under
/// the DES, and a second run of the identical plan must reproduce the
/// exact same reliability counters (determinism).
#[test]
fn lossy_32_node_reduction_matches_oracle_and_is_deterministic() {
    let n = 32u32;
    let plan = FaultPlan::uniform_loss(0xBEEF, 0.01);
    for ab in [AbConfig::default(), AbConfig::disabled()] {
        let (vals, rel) = des_reduce_with_faults(n, ab.clone(), &plan);
        assert_eq!(vals, oracle(n), "lossy DES run diverged from oracle");
        let (vals2, rel2) = des_reduce_with_faults(n, ab, &plan);
        assert_eq!(vals2, vals, "same plan, different results");
        assert_eq!(rel2, rel, "same plan, different reliability counters");
    }
}
