//! Multi-tenant driver guarantees.
//!
//! Two properties the refactor must hold forever:
//!
//! 1. **Single-job equivalence** — a tenant driver degenerated to one
//!    identity-placed job is *bit-for-bit* the legacy solo driver: same
//!    per-node results, same packet count, same final virtual clock. The
//!    tenant machinery (`Option<TenantState>`, header translation, CPU
//!    stretch) must cost the solo path nothing, the same discipline the
//!    fault layer follows.
//! 2. **Determinism** — a multi-job tenant run is a pure function of its
//!    mix seed: repeated runs are identical, and running many tenant
//!    points through the parallel sweep executor at any worker count
//!    changes nothing.

use abr_cluster::node::ClusterSpec;
use abr_cluster::program::ScriptProgram;
use abr_cluster::sweep::Sweep;
use abr_cluster::tenant::{run_tenant, saturation_config, TenantConfig, TenantResult};
use abr_cluster::{DesDriver, Step};
use abr_core::{AbConfig, AbEngine};
use abr_des::{SimDuration, SimTime};
use abr_jobs::Placement;
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

/// The scale-determinism workload, reused: skewed compute, rotating-root
/// reductions, broadcasts, barriers.
fn programs(n: u32, seed: u64) -> Vec<ScriptProgram> {
    (0..n)
        .map(|rank| {
            let mut steps = Vec::new();
            let mut x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rank as u64);
            for round in 0..3u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let skew_us = (x >> 33) % 400;
                steps.push(Step::Busy(SimDuration::from_us(skew_us)));
                steps.push(Step::Reduce {
                    root: round % n,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&[rank as f64 + 1.0, round as f64]),
                });
                steps.push(Step::Bcast {
                    root: 0,
                    data: (rank == 0).then(|| f64s_to_bytes(&[round as f64; 4]).into()),
                    len: 32,
                });
                steps.push(Step::Barrier);
            }
            ScriptProgram::new(steps)
        })
        .collect()
}

type Fingerprint = (Vec<abr_cluster::driver::NodeResult>, u64, SimTime);

#[test]
fn single_job_tenant_is_bit_identical_to_solo_driver_nab() {
    let n = 11u32;
    let spec = ClusterSpec::heterogeneous(n);
    for seed in [3u64, 0xFEED] {
        let solo: Fingerprint = {
            let mut d = DesDriver::new(
                &spec,
                |r, ec: EngineConfig| Engine::new(r, n, ec),
                programs(n, seed),
            );
            d.run();
            (d.results(), d.packets_delivered, d.now())
        };
        let tenant: Fingerprint = {
            let placement = Placement::identity(n as usize);
            let mut d = DesDriver::new_jobs(
                &spec,
                &placement.node_of,
                |_job, r, _size, ec| Engine::new(r, n, ec),
                vec![programs(n, seed)],
            );
            d.run();
            (d.results(), d.packets_delivered, d.now())
        };
        assert_eq!(solo, tenant, "seed {seed:#x}: 1-job tenant diverged");
    }
}

#[test]
fn single_job_tenant_is_bit_identical_to_solo_driver_ab() {
    let n = 12u32;
    let spec = ClusterSpec::heterogeneous(n);
    let solo: Fingerprint = {
        let mut d = DesDriver::new(
            &spec,
            |r, ec: EngineConfig| AbEngine::new(r, n, ec, AbConfig::default()),
            programs(n, 7),
        );
        d.run();
        (d.results(), d.packets_delivered, d.now())
    };
    let tenant: Fingerprint = {
        let placement = Placement::identity(n as usize);
        let mut d = DesDriver::new_jobs(
            &spec,
            &placement.node_of,
            |_job, r, _size, ec| AbEngine::new(r, n, ec, AbConfig::default()),
            vec![programs(n, 7)],
        );
        d.run();
        (d.results(), d.packets_delivered, d.now())
    };
    assert_eq!(solo, tenant, "1-job tenant diverged with bypass engines");
}

/// A saturation-ladder point: fixed cluster sized for load 8, job count
/// and communication rate scaling with `load` (see
/// `abr_cluster::tenant::saturation_config`).
fn tenant_config(seed: u64, load: f64, ab: bool) -> TenantConfig {
    saturation_config(seed, 2, load, 8.0, 4, ab)
}

/// One job's worth of fingerprint: id, reductions, finish bits, iter bits.
type JobPrint = (u32, u64, u64, Vec<u64>);

/// Everything a tenant run can disagree on, rendered comparable.
fn tenant_fingerprint(r: &TenantResult) -> (Vec<JobPrint>, u64, u64) {
    let jobs = r
        .jobs
        .iter()
        .map(|j| {
            (
                j.job,
                j.reductions,
                j.finish_us.to_bits(),
                j.iter_us.iter().map(|x| x.to_bits()).collect(),
            )
        })
        .collect();
    (jobs, r.makespan_us.to_bits(), r.events)
}

#[test]
fn multi_job_tenant_run_is_deterministic_across_repeats() {
    for ab in [false, true] {
        let cfg = tenant_config(0xA11CE, 3.0, ab);
        let a = tenant_fingerprint(&run_tenant(&cfg));
        let b = tenant_fingerprint(&run_tenant(&cfg));
        assert_eq!(a, b, "ab={ab}: repeated tenant runs diverged");
    }
}

#[test]
fn tenant_points_identical_across_sweep_parallelism() {
    // The saturation figure maps tenant points through the parallel sweep
    // executor: any ABR_JOBS worker count must produce byte-identical
    // results for every point.
    let points: Vec<TenantConfig> = [1.0, 3.0, 6.0]
        .iter()
        .flat_map(|&load| [false, true].map(|ab| tenant_config(99, load, ab)))
        .collect();
    let run_all = |workers: usize| -> Vec<_> {
        Sweep::with_jobs(workers).map(&points, |cfg| tenant_fingerprint(&run_tenant(cfg)))
    };
    let serial = run_all(1);
    for workers in [2usize, 8] {
        assert_eq!(
            serial,
            run_all(workers),
            "{workers}-worker sweep diverged from serial"
        );
    }
}

#[test]
fn tenant_trace_renders_one_lane_group_per_job() {
    use abr_trace::{chrome_trace_json, validate_json, RingRecorder, TraceClock};

    // Two tiny jobs, one rank-to-node placement per job, recorder wired
    // through the multi-job driver with the driver's own job map.
    let spec = ClusterSpec::homogeneous_1000(5);
    let node_of: Vec<Vec<usize>> = vec![vec![0, 1, 2], vec![3, 4]];
    let progs = vec![programs(3, 5), programs(2, 5)];
    let mut d = DesDriver::new_jobs(
        &spec,
        &node_of,
        |_job, r, size, ec| Engine::new(r, size, ec),
        progs,
    );
    let rec = RingRecorder::new(5, 4096, TraceClock::Virtual, 5, 0);
    d.install_tracer(rec.clone());
    rec.set_job_map(d.job_map().expect("multi-job driver has a job map"));
    d.run();

    let trace = rec.snapshot();
    assert!(trace.has_jobs, "job map must mark the trace multi-tenant");
    let json = chrome_trace_json(&trace);
    validate_json(&json).expect("tenant chrome export must stay valid JSON");
    for name in ["\"job 0\"", "\"job 1\""] {
        assert!(json.contains(name), "missing process group {name}");
    }
    // Lanes are grouped per job: pid is the job id, not the rank.
    assert!(json.contains("\"pid\":1"), "job 1 events carry pid 1");
}

#[test]
fn colocation_hurts_the_baseline_more_than_bypass() {
    // The figure's mechanism, pinned as a test: moving from relaxed to
    // saturating load must cost nab more aggregate throughput (relative)
    // than ab — blocked nab ranks busy-poll on shared hosts.
    let lo_nab = run_tenant(&tenant_config(17, 1.0, false)).reductions_per_sec;
    let hi_nab = run_tenant(&tenant_config(17, 8.0, false)).reductions_per_sec;
    let lo_ab = run_tenant(&tenant_config(17, 1.0, true)).reductions_per_sec;
    let hi_ab = run_tenant(&tenant_config(17, 8.0, true)).reductions_per_sec;
    // At saturating load ab must deliver strictly more service.
    assert!(
        hi_ab > hi_nab,
        "saturated: ab {hi_ab:.1} red/s must beat nab {hi_nab:.1} red/s"
    );
    // And the ab advantage must *grow* with load (the figure's headline).
    let adv_lo = lo_ab / lo_nab;
    let adv_hi = hi_ab / hi_nab;
    assert!(
        adv_hi > adv_lo,
        "ab advantage must widen with load: {adv_lo:.3}x at load 1 vs {adv_hi:.3}x at load 8"
    );
}
