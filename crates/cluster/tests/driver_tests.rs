//! End-to-end tests of the discrete-event driver and the microbenchmarks.

use abr_cluster::microbench::{run_cpu_util, run_latency, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{ScriptProgram, Step};
use abr_cluster::DesDriver;
use abr_core::{AbConfig, AbEngine, DelayPolicy};
use abr_des::SimDuration;
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

fn reduce_step(rank: u32, elems: usize) -> Step {
    Step::Reduce {
        root: 0,
        op: ReduceOp::Sum,
        dtype: Datatype::F64,
        data: f64s_to_bytes(&vec![rank as f64; elems]),
    }
}

#[test]
fn baseline_reduce_completes_under_des() {
    let spec = ClusterSpec::homogeneous_1000(4);
    let programs: Vec<_> = (0..4u32)
        .map(|r| {
            Box::new(ScriptProgram::new(vec![reduce_step(r, 4), Step::Barrier]))
                as Box<dyn abr_cluster::Program>
        })
        .collect();
    let mut d = DesDriver::new(&spec, |r, ec: EngineConfig| Engine::new(r, 4, ec), programs);
    d.run();
    assert!(d.now() > abr_des::SimTime::ZERO);
    let results = d.results();
    // Root polled (it waits on children); everyone paid protocol CPU.
    assert!(results[0].cpu_protocol_us > 0.0);
}

#[test]
fn ab_reduce_completes_under_des_with_skew() {
    let spec = ClusterSpec::homogeneous_1000(8);
    let programs: Vec<_> = (0..8u32)
        .map(|r| {
            // Heavy skew on rank 3 (a leaf under 2): others proceed.
            let skew = if r == 3 { 800 } else { r as u64 * 10 };
            Box::new(ScriptProgram::new(vec![
                Step::Busy(SimDuration::from_us(skew)),
                reduce_step(r, 4),
                Step::Busy(SimDuration::from_us(1200)),
                Step::Barrier,
            ])) as Box<dyn abr_cluster::Program>
        })
        .collect();
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, 8, ec, AbConfig::default()),
        programs,
    );
    d.run();
    let results = d.results();
    let signals: u64 = results.iter().map(|r| r.signals_raised).sum();
    assert!(signals > 0, "late children must trigger signals");
    let handler_cpu: f64 = results.iter().map(|r| r.cpu_signal_us).sum();
    assert!(handler_cpu > 0.0, "handler CPU must be charged");
}

#[test]
fn des_is_deterministic() {
    let run = || {
        let cfg = CpuUtilConfig {
            iters: 20,
            ..CpuUtilConfig::new(
                ClusterSpec::heterogeneous(8),
                Mode::Bypass(DelayPolicy::None),
            )
        };
        let r = run_cpu_util(&cfg);
        (format!("{:.6}", r.mean_cpu_us), r.signals)
    };
    assert_eq!(run(), run());
}

#[test]
fn cpu_util_ab_beats_nab_under_heavy_skew() {
    let base = CpuUtilConfig {
        iters: 40,
        max_skew_us: 1000,
        elems: 4,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous(16), Mode::Baseline)
    };
    let nab = run_cpu_util(&base);
    let ab = run_cpu_util(&CpuUtilConfig {
        mode: Mode::Bypass(DelayPolicy::None),
        ..base.clone()
    });
    assert!(
        ab.mean_cpu_us < nab.mean_cpu_us,
        "ab {:.1}us should beat nab {:.1}us at 1000us skew",
        ab.mean_cpu_us,
        nab.mean_cpu_us
    );
    // The improvement should be substantial (paper: ~4-5x at 16-32 nodes).
    assert!(
        nab.mean_cpu_us / ab.mean_cpu_us > 2.0,
        "factor of improvement {:.2} too small (nab={:.1}, ab={:.1})",
        nab.mean_cpu_us / ab.mean_cpu_us,
        nab.mean_cpu_us,
        ab.mean_cpu_us
    );
    assert!(ab.signals > 0, "skewed ab run must take signals");
    assert_eq!(nab.signals, 0, "baseline must never signal");
}

#[test]
fn cpu_util_no_skew_is_cheap_for_both() {
    let base = CpuUtilConfig {
        iters: 40,
        max_skew_us: 0,
        elems: 4,
        catchup_margin_us: 300,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous(8), Mode::Baseline)
    };
    let nab = run_cpu_util(&base);
    let ab = run_cpu_util(&CpuUtilConfig {
        mode: Mode::Bypass(DelayPolicy::None),
        ..base.clone()
    });
    // Without injected skew both implementations should sit well below the
    // 1000us-skew numbers; tens of microseconds territory.
    assert!(
        nab.mean_cpu_us < 120.0,
        "nab no-skew too expensive: {}",
        nab.mean_cpu_us
    );
    assert!(
        ab.mean_cpu_us < 120.0,
        "ab no-skew too expensive: {}",
        ab.mean_cpu_us
    );
}

#[test]
fn latency_benchmark_produces_plausible_numbers() {
    let cfg = LatencyConfig {
        iters: 30,
        ..LatencyConfig::new(ClusterSpec::homogeneous_700(16), Mode::Baseline)
    };
    let nab = run_latency(&cfg);
    assert!(
        nab.one_way_us > 1.0 && nab.one_way_us < 30.0,
        "one-way {}",
        nab.one_way_us
    );
    assert!(
        nab.mean_latency_us > 10.0 && nab.mean_latency_us < 300.0,
        "16-node latency {}us implausible",
        nab.mean_latency_us
    );
    let ab = run_latency(&LatencyConfig {
        mode: Mode::Bypass(DelayPolicy::None),
        ..cfg
    });
    // With no skew, ab pays some signal overhead: latency should not be
    // dramatically better than nab.
    assert!(
        ab.mean_latency_us > nab.mean_latency_us * 0.7,
        "ab {} vs nab {}",
        ab.mean_latency_us,
        nab.mean_latency_us
    );
}

#[test]
fn latency_two_nodes_nearly_identical_between_modes() {
    // Two nodes: no internal nodes, ab degenerates to nab (paper Fig. 9).
    let cfg = LatencyConfig {
        iters: 30,
        ..LatencyConfig::new(ClusterSpec::homogeneous_700(2), Mode::Baseline)
    };
    let nab = run_latency(&cfg);
    let ab = run_latency(&LatencyConfig {
        mode: Mode::Bypass(DelayPolicy::None),
        ..cfg
    });
    let rel = (ab.mean_latency_us - nab.mean_latency_us).abs() / nab.mean_latency_us;
    assert!(
        rel < 0.05,
        "2-node ab/nab diverge: {} vs {}",
        ab.mean_latency_us,
        nab.mean_latency_us
    );
    assert_eq!(ab.signals, 0, "no internal nodes, no signals");
}

#[test]
fn split_phase_mode_runs_and_reduces_cpu_waste_at_root() {
    let base = CpuUtilConfig {
        iters: 30,
        max_skew_us: 1000,
        ..CpuUtilConfig::new(ClusterSpec::homogeneous_1000(8), Mode::Baseline)
    };
    let nab = run_cpu_util(&base);
    let split = run_cpu_util(&CpuUtilConfig {
        mode: Mode::SplitPhase,
        ..base.clone()
    });
    // Split-phase overlaps the reduce with the catch-up busy work on every
    // rank including the root, so it should do at least as well as ab.
    assert!(
        split.mean_cpu_us < nab.mean_cpu_us,
        "split {:.1} vs nab {:.1}",
        split.mean_cpu_us,
        nab.mean_cpu_us
    );
}

#[test]
fn delay_policy_reduces_signals() {
    let base = CpuUtilConfig {
        iters: 40,
        max_skew_us: 200,
        ..CpuUtilConfig::new(
            ClusterSpec::homogeneous_1000(8),
            Mode::Bypass(DelayPolicy::None),
        )
    };
    let no_delay = run_cpu_util(&base);
    let with_delay = run_cpu_util(&CpuUtilConfig {
        mode: Mode::Bypass(DelayPolicy::Fixed { us: 250.0 }),
        ..base.clone()
    });
    assert!(
        with_delay.signals < no_delay.signals,
        "a 250us exit delay at 200us max skew should absorb most signals: {} vs {}",
        with_delay.signals,
        no_delay.signals
    );
}

#[test]
fn heterogeneous_cluster_runs_both_modes() {
    for mode in [Mode::Baseline, Mode::Bypass(DelayPolicy::None)] {
        let cfg = CpuUtilConfig {
            iters: 10,
            ..CpuUtilConfig::new(ClusterSpec::heterogeneous_32(), mode)
        };
        let r = run_cpu_util(&cfg);
        assert!(r.mean_cpu_us > 0.0);
        assert_eq!(r.per_node_us.len(), 32);
    }
}
