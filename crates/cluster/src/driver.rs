//! The discrete-event driver.
//!
//! Runs one [`Program`] per node against one [`MessageEngine`] per node,
//! under virtual time:
//!
//! * **Blocking MPI calls** are emulated the way the default MPICH
//!   implementation actually behaves: the node's CPU busy-polls from the
//!   moment the call stalls until the packet that unblocks it arrives. The
//!   driver charges that whole wall-time span as polling CPU — which is
//!   precisely the cost the paper's application-bypass design eliminates
//!   for internal tree nodes.
//! * **Signals** follow §V-A: only collective-type packets raise them, only
//!   while the engine has them enabled, and a signal arriving while the
//!   node is already inside the progress engine (blocked-polling) is
//!   ignored — the poll loop will pick the packet up anyway. A delivered
//!   signal *preempts* whatever the node is doing (busy loops included),
//!   pushing the interrupted work's completion back by the handler time.
//! * **Bounded blocks** implement the §IV-E exit delay: when an engine
//!   reports a bounded-block hint for a request, the driver keeps the node
//!   polling inside the call until the budget expires, then calls
//!   [`MessageEngine::split_phase_exit`].
//! * **Heterogeneity**: protocol and handler CPU charges are scaled by the
//!   node's CPU class; packet delivery times come from the GM network model
//!   with per-class PCI/LANai costs and per-(src,dst) FIFO ordering.

use crate::node::ClusterSpec;
use crate::program::{Obs, Program, Step, StepCtx};
use abr_des::meter::CpuCategory;
use abr_des::{CpuMeter, EventId, EventQueue, SimDuration, SimTime};
use abr_faults::{FaultInjector, FaultPlan, NodeReliability, RelConfig, RelEvent, RelStats};
use abr_gm::nic::{Network, NodeHw};
use abr_gm::packet::Packet;
use abr_gm::signal::SignalControl;
use abr_mpr::engine::{Action, EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::types::TagSel;
use abr_mpr::ReqId;
use abr_trace::{TraceEvent, TraceHandle, Tracer};
use std::collections::HashMap;
use std::sync::Arc;

enum Ev {
    Deliver {
        node: usize,
        pkt: Packet,
    },
    StepDone {
        node: usize,
        gen: u64,
    },
    Deadline {
        node: usize,
        req: u64,
        gen: u64,
    },
    Kick {
        node: usize,
    },
    /// Retransmission-timer check for one node's reliability layer.
    RelTick {
        node: usize,
    },
}

/// Fault-injection + reliability state, present only when a non-empty
/// [`FaultPlan`] was installed. With no plan the driver's hot paths are
/// byte-for-byte the fault-free ones (cost neutrality).
struct FaultState {
    injector: FaultInjector,
    rel: Vec<NodeReliability>,
    /// Per-node pending [`Ev::RelTick`]: `(scheduled_at, event)`.
    tick: Vec<Option<(SimTime, EventId)>>,
}

enum NodeState {
    /// Executing a busy-loop step; `charge` is applied when it completes.
    Busy { charge: SimDuration, event: EventId },
    /// Inside a blocking MPI call, busy-polling.
    Blocked {
        req: ReqId,
        deadline_event: Option<EventId>,
    },
    /// Program finished.
    Done,
}

struct NodeCell<E: MessageEngine> {
    engine: E,
    hw: NodeHw,
    signal: SignalControl,
    meter: CpuMeter,
    program: Box<dyn Program>,
    ctx: StepCtx,
    state: NodeState,
    /// When this node's CPU is next free.
    cpu_free_at: SimTime,
    /// While blocked: the instant polling (idle-burn) resumed.
    poll_from: SimTime,
    kick_pending: bool,
    /// Generation counter invalidating stale StepDone/Deadline/Kick events.
    gen: u64,
    /// Outstanding split-phase reduce request, if any.
    split_req: Option<ReqId>,
    /// Synthesized signals (enable-with-backlog edge).
    synth_signals: u64,
    /// CPU time consumed by delivered-but-ignored signals, applied to the
    /// node's cursor at the next wake.
    interrupt_debt: SimDuration,
    /// NIC time from the most recent `apply_charges` (drives NIC-side
    /// forwarding latency in the offload extension).
    last_nic_charge: SimDuration,
    /// Per-rank trace handle (disabled by default; see `install_tracer`).
    trace: TraceHandle,
}

/// One recorded span of node activity (timeline introspection; used by the
/// Fig. 2 time-line reproduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Node index.
    pub node: usize,
    /// What the node (or its NIC) was doing.
    pub kind: CpuCategory,
    /// Span start.
    pub start: SimTime,
    /// Span length.
    pub dur: SimDuration,
}

/// Per-node results extracted after a run.
#[derive(Debug, Clone)]
pub struct NodeResult {
    /// Observations recorded by the node's program.
    pub obs: Vec<Obs>,
    /// Total CPU charged, by category (µs).
    pub cpu_app_us: f64,
    /// Polling CPU (µs).
    pub cpu_poll_us: f64,
    /// Protocol CPU (µs).
    pub cpu_protocol_us: f64,
    /// Signal-handler CPU (µs).
    pub cpu_signal_us: f64,
    /// NIC-processor time (µs) — not host CPU.
    pub cpu_nic_us: f64,
    /// Signals actually taken.
    pub signals_raised: u64,
    /// Signals suppressed because progress was underway.
    pub signals_suppressed_busy: u64,
    /// Engine counters.
    pub counters: Vec<(&'static str, u64)>,
}

/// The discrete-event driver. See module docs.
pub struct DesDriver<E: MessageEngine> {
    queue: EventQueue<Ev>,
    network: Network,
    nodes: Vec<NodeCell<E>>,
    wire_seq: HashMap<(u32, u32), u64>,
    done_count: usize,
    max_events: u64,
    /// Total packets delivered.
    pub packets_delivered: u64,
    timeline: Option<Vec<TimelineEvent>>,
    /// Reused buffer for draining engine actions (see `route_actions`).
    action_scratch: Vec<Action>,
    faults: Option<FaultState>,
    tracer: Option<Arc<dyn Tracer>>,
}

impl<E: MessageEngine> DesDriver<E> {
    /// Build a driver for `spec`, constructing one engine per rank with
    /// `make_engine` and running `programs[rank]` on it.
    pub fn new(
        spec: &ClusterSpec,
        mut make_engine: impl FnMut(u32, EngineConfig) -> E,
        programs: Vec<Box<dyn Program>>,
    ) -> Self {
        let n = spec.len();
        assert_eq!(programs.len(), n, "one program per rank");
        assert!(n >= 1);
        let config = EngineConfig {
            cost: spec.cost.clone(),
            eager_limit: spec.eager_limit,
            memory_budget: None,
            allreduce_rs_threshold: 2048,
            topology: spec.topology,
        };
        let nodes = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| NodeCell {
                engine: make_engine(i as u32, config.clone()),
                hw: spec.nodes[i],
                signal: SignalControl::new(),
                meter: CpuMeter::new(),
                program,
                ctx: StepCtx::new(),
                state: NodeState::Done, // replaced at start
                cpu_free_at: SimTime::ZERO,
                poll_from: SimTime::ZERO,
                kick_pending: false,
                gen: 0,
                split_req: None,
                synth_signals: 0,
                interrupt_debt: SimDuration::ZERO,
                last_nic_charge: SimDuration::ZERO,
                trace: TraceHandle::default(),
            })
            .collect();
        DesDriver {
            queue: EventQueue::new(),
            network: Network::new(spec.cost.clone()),
            nodes,
            wire_seq: HashMap::new(),
            done_count: 0,
            max_events: 2_000_000_000,
            packets_delivered: 0,
            timeline: None,
            action_scratch: Vec::new(),
            faults: None,
            tracer: None,
        }
    }

    /// Wire a [`Tracer`] through the whole stack: each rank's CPU meter,
    /// engine, signal control and (when faults are installed) reliability
    /// layer gets a per-rank handle, the network emits per-segment wire
    /// charges, and the event queue publishes virtual time to the recorder
    /// on every pop. With no tracer installed every one of those sites is a
    /// single `Option` branch (cost neutrality, like [`FaultPlan::none`]).
    pub fn install_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        self.queue.set_tracer(TraceHandle::new(tracer.clone(), 0));
        self.network.set_tracer(TraceHandle::new(tracer.clone(), 0));
        for (i, cell) in self.nodes.iter_mut().enumerate() {
            let h = TraceHandle::new(tracer.clone(), i as u32);
            cell.meter.set_tracer(h.clone());
            cell.signal.set_tracer(h.clone());
            cell.engine.set_tracer(h.clone());
            cell.trace = h;
        }
        if let Some(f) = &mut self.faults {
            f.injector.set_tracer(TraceHandle::new(tracer.clone(), 0));
            for (i, r) in f.rel.iter_mut().enumerate() {
                r.set_tracer(TraceHandle::new(tracer.clone(), i as u32));
            }
        }
        self.tracer = Some(tracer);
    }

    /// Install a fault plan and the reliability layer that tolerates it.
    /// A [`FaultPlan::none`] plan is a no-op: the driver keeps its
    /// fault-free hot paths and pays nothing.
    pub fn set_faults(&mut self, plan: &FaultPlan, rel_cfg: RelConfig) {
        if plan.is_none() {
            return;
        }
        let n = self.nodes.len();
        let mut state = FaultState {
            injector: FaultInjector::new(plan.clone()),
            rel: (0..n)
                .map(|i| NodeReliability::new(i as u32, rel_cfg))
                .collect(),
            tick: vec![None; n],
        };
        if let Some(tracer) = &self.tracer {
            state
                .injector
                .set_tracer(TraceHandle::new(tracer.clone(), 0));
            for (i, r) in state.rel.iter_mut().enumerate() {
                r.set_tracer(TraceHandle::new(tracer.clone(), i as u32));
            }
        }
        self.faults = Some(state);
    }

    /// Aggregate reliability-layer counters across all nodes, if the fault
    /// layer is active.
    pub fn rel_stats(&self) -> Option<RelStats> {
        self.faults.as_ref().map(|f| {
            let mut total = RelStats::default();
            for r in &f.rel {
                total.merge(&r.stats());
            }
            total
        })
    }

    /// Record a timeline of per-node activity spans (off by default; it
    /// costs memory proportional to the event count).
    pub fn with_timeline(mut self) -> Self {
        self.timeline = Some(Vec::new());
        self
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&[TimelineEvent]> {
        self.timeline.as_deref()
    }

    fn record_span(&mut self, node: usize, kind: CpuCategory, start: SimTime, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        if let Some(tl) = &mut self.timeline {
            tl.push(TimelineEvent {
                node,
                kind,
                start,
                dur,
            });
        }
    }

    /// Cap the number of events (runaway protection in tests).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Run to completion (every program `Done`).
    ///
    /// # Panics
    /// Panics on deadlock (event queue drained with programs unfinished) or
    /// on exceeding the event cap.
    pub fn run(&mut self) {
        let n = self.nodes.len();
        for i in 0..n {
            self.advance_program(i, SimTime::ZERO);
        }
        let mut events = 0u64;
        while self.done_count < n {
            let Some(ev) = self.queue.pop() else {
                let stuck: Vec<usize> = self
                    .nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !matches!(c.state, NodeState::Done))
                    .map(|(i, _)| i)
                    .collect();
                panic!("DES deadlock: nodes {stuck:?} never finished");
            };
            events += 1;
            assert!(events <= self.max_events, "event cap exceeded: livelock?");
            let at = ev.at;
            match ev.payload {
                Ev::Deliver { node, pkt } => self.on_deliver(node, pkt, at),
                Ev::StepDone { node, gen } => self.on_step_done(node, gen, at),
                Ev::Deadline { node, req, gen } => self.on_deadline(node, req, gen, at),
                Ev::Kick { node } => self.on_kick(node, at),
                Ev::RelTick { node } => self.on_rel_tick(node, at),
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The network (post-run statistics).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Extract per-node results.
    pub fn results(&self) -> Vec<NodeResult> {
        self.nodes
            .iter()
            .map(|c| NodeResult {
                obs: c.ctx.obs.clone(),
                cpu_app_us: c.meter.category(CpuCategory::Application).as_us_f64(),
                cpu_poll_us: c.meter.category(CpuCategory::Polling).as_us_f64(),
                cpu_protocol_us: c.meter.category(CpuCategory::Protocol).as_us_f64(),
                cpu_signal_us: c.meter.category(CpuCategory::SignalHandler).as_us_f64(),
                cpu_nic_us: c.meter.category(CpuCategory::NicOffload).as_us_f64(),
                signals_raised: c.signal.raised() + c.synth_signals,
                signals_suppressed_busy: c.signal.suppressed_progress_underway(),
                counters: c.engine.counters(),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Engine service helpers
    // ------------------------------------------------------------------

    /// Drain the engine's CPU charges into the node meter, scaling host
    /// work by the CPU class and NIC work by the LANai clock. Returns the
    /// total *host* time (NIC work runs on the NIC processor, concurrently).
    fn apply_charges(&mut self, i: usize) -> SimDuration {
        let cell = &mut self.nodes[i];
        let c = cell.engine.take_charges();
        let protocol = cell.hw.scale_cpu(c.protocol);
        let signal = cell.hw.scale_cpu(c.signal);
        // Polling entry costs scale with the CPU too.
        let polling = cell.hw.scale_cpu(c.polling);
        let nic = c.nic.scaled_f64(cell.hw.lanai.per_packet_scale());
        cell.meter.charge(CpuCategory::Polling, polling);
        cell.meter.charge(CpuCategory::Protocol, protocol);
        cell.meter.charge(CpuCategory::SignalHandler, signal);
        cell.meter.charge(CpuCategory::NicOffload, nic);
        cell.last_nic_charge = nic;
        polling + protocol + signal
    }

    /// Route the engine's pending actions. Sends are stamped `stamp`.
    fn route_actions(&mut self, i: usize, stamp: SimTime) {
        // Double-buffer: drain into a scratch vector that is returned to
        // the driver afterwards, so steady-state routing allocates nothing.
        let mut actions = std::mem::take(&mut self.action_scratch);
        self.nodes[i].engine.drain_actions_into(&mut actions);
        for a in actions.drain(..) {
            match a {
                Action::Send(pkt) => self.transmit(i, pkt, stamp),
                Action::EnableSignals => {
                    self.nodes[i].signal.enable();
                }
                Action::DisableSignals => {
                    self.nodes[i].signal.disable();
                }
            }
        }
        self.action_scratch = actions;
    }

    /// Send one engine-originated packet at `stamp`. With faults installed
    /// the packet first passes through the sender's reliability layer
    /// (stamping `rel_seq`, buffering for retransmission); without, this is
    /// exactly the fault-free send.
    fn transmit(&mut self, i: usize, mut pkt: Packet, stamp: SimTime) {
        if let Some(f) = &mut self.faults {
            pkt = f.rel[i].on_send(pkt, stamp.as_nanos());
        }
        self.transmit_raw(i, pkt, stamp);
        if self.faults.is_some() {
            self.schedule_rel_tick(i, stamp);
        }
    }

    /// Put a packet on the wire: stamp `wire_seq`, run the fault injector,
    /// and schedule delivery for every surviving copy. Retransmissions and
    /// acks enter here directly (they bypass `on_send`).
    fn transmit_raw(&mut self, i: usize, mut pkt: Packet, stamp: SimTime) {
        let key = (pkt.header.src.0, pkt.header.dst.0);
        let seq = self.wire_seq.entry(key).or_insert(0);
        pkt.header.wire_seq = *seq;
        *seq += 1;
        let dst = pkt.header.dst.index();
        let src_hw = self.nodes[i].hw;
        let dst_hw = self.nodes[dst].hw;
        let Some(f) = &mut self.faults else {
            let arrive = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt);
            self.queue.schedule(arrive, Ev::Deliver { node: dst, pkt });
            return;
        };
        let verdict = f.injector.decide(&pkt, Some(stamp.as_nanos()));
        if verdict.copies == 0 {
            // Dropped: the NIC and wire still did the work of sending it,
            // so charge network occupancy exactly as for a delivered packet.
            let _ = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt);
            return;
        }
        for _ in 0..verdict.copies {
            let arrive = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt)
                + SimDuration::from_nanos(verdict.extra_delay_ns);
            self.queue.schedule(
                arrive,
                Ev::Deliver {
                    node: dst,
                    pkt: pkt.clone(),
                },
            );
        }
    }

    /// (Re-)schedule node `i`'s retransmission-timer event to match its
    /// reliability layer's earliest deadline.
    fn schedule_rel_tick(&mut self, i: usize, now: SimTime) {
        let Some(f) = &mut self.faults else {
            return;
        };
        let want = f.rel[i]
            .next_deadline()
            .map(|ns| SimTime::from_nanos(ns).max(now));
        match (want, f.tick[i]) {
            (None, None) => {}
            (None, Some((_, ev))) => {
                self.queue.cancel(ev);
                f.tick[i] = None;
            }
            (Some(at), Some((cur, _))) if cur == at => {}
            (Some(at), prev) => {
                if let Some((_, ev)) = prev {
                    self.queue.cancel(ev);
                }
                let ev = self.queue.schedule(at, Ev::RelTick { node: i });
                f.tick[i] = Some((at, ev));
            }
        }
    }

    /// A reliability timer fired: let node `i` retransmit what's overdue.
    fn on_rel_tick(&mut self, i: usize, t: SimTime) {
        let mut out = Vec::new();
        {
            let Some(f) = &mut self.faults else {
                return;
            };
            f.tick[i] = None;
            f.rel[i].on_tick(t.as_nanos(), &mut out);
        }
        for e in out {
            match e {
                RelEvent::Transmit(p) => self.transmit_raw(i, p, t),
                RelEvent::LinkDead { peer } => {
                    panic!("rank {i}: link to rank {peer} declared dead (retry budget exhausted)")
                }
                RelEvent::Deliver(_) => unreachable!("ticks never deliver"),
            }
        }
        self.schedule_rel_tick(i, t);
    }

    /// The node just ran engine work inline at `t`: charge it, advance the
    /// CPU cursor, route outputs. Returns the new CPU-free instant.
    fn finish_call(&mut self, i: usize, t: SimTime) -> SimTime {
        let w = self.apply_charges(i);
        self.record_span(i, CpuCategory::Protocol, t, w);
        let end = t + w;
        self.nodes[i].cpu_free_at = end;
        self.route_actions(i, end);
        end
    }

    /// Signals were just enabled while collective packets already sat in
    /// the receive queue (the enable-with-backlog edge §V-A must not lose):
    /// the NIC raises a signal immediately.
    fn maybe_synth_signal(&mut self, i: usize, t: SimTime) {
        if matches!(self.nodes[i].state, NodeState::Blocked { .. }) {
            return;
        }
        if self.nodes[i].signal.is_enabled() && self.nodes[i].engine.has_pending_signal_work() {
            self.nodes[i].synth_signals += 1;
            self.run_handler(i, t);
        }
    }

    /// Deliver a signal: run the asynchronous handler, preempting whatever
    /// the node is doing.
    fn run_handler(&mut self, i: usize, t: SimTime) {
        self.nodes[i].engine.handle_signal();
        let w = self.apply_charges(i);
        self.record_span(i, CpuCategory::SignalHandler, t, w);
        match self.nodes[i].state {
            NodeState::Busy { charge, event } => {
                // Preemption: the busy step finishes `w` later.
                let new_end = self.nodes[i].cpu_free_at + w;
                self.queue.cancel(event);
                let gen = self.nodes[i].gen;
                let new_event = self.queue.schedule(new_end, Ev::StepDone { node: i, gen });
                self.nodes[i].state = NodeState::Busy {
                    charge,
                    event: new_event,
                };
                self.nodes[i].cpu_free_at = new_end;
                self.route_actions(i, t + w);
            }
            _ => {
                let end = self.nodes[i].cpu_free_at.max(t) + w;
                self.nodes[i].cpu_free_at = end;
                self.route_actions(i, end);
            }
        }
        // The handler may have enabled... no: handlers only disable. But
        // inner cranking may have freed follow-on work; nothing to do.
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_deliver(&mut self, i: usize, pkt: Packet, t: SimTime) {
        if self.faults.is_some() {
            // Reliability pre-stage: acks are consumed here, duplicates are
            // suppressed, out-of-order data is resequenced; whatever is
            // ready flows on to the engine in `rel_seq` order.
            let mut out = Vec::new();
            {
                let f = self.faults.as_mut().expect("checked above");
                f.rel[i].on_receive(pkt, t.as_nanos(), &mut out);
            }
            for e in out {
                match e {
                    RelEvent::Deliver(p) => self.deliver_to_node(i, p, t),
                    RelEvent::Transmit(p) => self.transmit_raw(i, p, t),
                    RelEvent::LinkDead { peer } => {
                        panic!("rank {i}: link to rank {peer} declared dead")
                    }
                }
            }
            self.schedule_rel_tick(i, t);
            return;
        }
        self.deliver_to_node(i, pkt, t);
    }

    /// Hand one in-sequence packet to node `i`'s engine (the fault-free
    /// delivery path; under faults the reliability layer feeds this).
    fn deliver_to_node(&mut self, i: usize, pkt: Packet, t: SimTime) {
        self.packets_delivered += 1;
        // NIC-side pre-processing (the §VII extension) happens at arrival,
        // on the NIC processor, regardless of what the host is doing.
        let Some(pkt) = self.nodes[i].engine.nic_preprocess(pkt) else {
            let _nic_host = self.apply_charges(i); // charges NIC meter; host part ~0
            debug_assert!(_nic_host.is_zero(), "NIC preprocessing charged host CPU");
            // The NIC serializes matching and arithmetic before it can
            // forward a result: the LANai's slow per-element ops delay the
            // result on its way up the tree (refs. \[9\]/\[11\]'s trade-off).
            let nic_busy = self.nodes[i].last_nic_charge;
            self.record_span(i, CpuCategory::NicOffload, t, nic_busy);
            self.route_actions(i, t + nic_busy);
            if matches!(self.nodes[i].state, NodeState::Blocked { .. }) {
                if t >= self.nodes[i].cpu_free_at {
                    self.wake_blocked(i, t);
                } else if !self.nodes[i].kick_pending {
                    self.nodes[i].kick_pending = true;
                    let at = self.nodes[i].cpu_free_at;
                    self.queue.schedule(at, Ev::Kick { node: i });
                }
            }
            return;
        };
        let blocked = matches!(self.nodes[i].state, NodeState::Blocked { .. });
        let arrival = self.nodes[i].signal.on_arrival(&pkt, blocked);
        let signal = arrival.is_ok();
        if arrival == Err(abr_gm::signal::SignalSuppression::ProgressUnderway) {
            // The NIC still raised the signal; the kernel-to-user delivery
            // is paid even though the handler body is skipped (Fig. 4's
            // "simply ignored" signal is not free).
            let cost = self.network.cost().signal_ignored_cost();
            self.nodes[i].meter.charge(CpuCategory::SignalHandler, cost);
            self.nodes[i].interrupt_debt += cost;
        }
        self.nodes[i].engine.deliver(pkt);
        if blocked {
            if t >= self.nodes[i].cpu_free_at {
                self.wake_blocked(i, t);
            } else if !self.nodes[i].kick_pending {
                self.nodes[i].kick_pending = true;
                let at = self.nodes[i].cpu_free_at;
                self.queue.schedule(at, Ev::Kick { node: i });
            }
        } else if signal {
            self.run_handler(i, t);
        }
        // Busy/Done without signal: the packet waits in the receive queue
        // until something triggers the progress engine — exactly the stock
        // MPICH behaviour the paper describes.
    }

    fn on_kick(&mut self, i: usize, t: SimTime) {
        // Kicks are deliberately NOT generation-checked: a kick scheduled
        // for one blocking call may fire during a later one, where it is a
        // harmless extra progress pass — but dropping it while leaving
        // `kick_pending` set would lose the wakeup entirely.
        self.nodes[i].kick_pending = false;
        if matches!(self.nodes[i].state, NodeState::Blocked { .. }) {
            self.wake_blocked(i, t);
        }
    }

    fn on_step_done(&mut self, i: usize, gen: u64, t: SimTime) {
        if self.nodes[i].gen != gen {
            return;
        }
        let NodeState::Busy { charge, .. } = self.nodes[i].state else {
            return;
        };
        // The busy loop's own CPU is charged on completion (handler
        // preemptions were charged separately as they happened).
        self.nodes[i].meter.charge(CpuCategory::Application, charge);
        // Approximate span: the busy loop ended at `t` after consuming
        // `charge` of CPU (handler preemptions interleave within it).
        let span_start = SimTime::from_nanos(t.as_nanos().saturating_sub(charge.as_nanos()));
        self.record_span(i, CpuCategory::Application, span_start, charge);
        self.nodes[i].gen += 1;
        self.advance_program(i, t);
    }

    fn on_deadline(&mut self, i: usize, req_raw: u64, gen: u64, t: SimTime) {
        if self.nodes[i].gen != gen {
            return;
        }
        let NodeState::Blocked { req, .. } = self.nodes[i].state else {
            return;
        };
        if req.raw() != req_raw {
            return;
        }
        // Charge the tail of the bounded poll.
        let poll_from = self.nodes[i].poll_from;
        if t > poll_from {
            self.nodes[i]
                .meter
                .charge(CpuCategory::Polling, t - poll_from);
            self.record_span(i, CpuCategory::Polling, poll_from, t - poll_from);
        }
        let exit_at = self.nodes[i].cpu_free_at.max(t);
        self.nodes[i].engine.split_phase_exit(req);
        let end = self.finish_call(i, exit_at);
        debug_assert!(
            self.nodes[i].engine.test(req),
            "split exit must complete the call"
        );
        let _ = self.nodes[i].engine.take_outcome(req);
        self.nodes[i].gen += 1;
        self.maybe_synth_signal(i, end);
        self.advance_program(i, end);
    }

    /// A blocked node's CPU gets new input at `t`: charge the poll burn,
    /// run the progress engine, and resume the program if the request
    /// completed.
    fn wake_blocked(&mut self, i: usize, t: SimTime) {
        let NodeState::Blocked {
            req,
            deadline_event,
        } = self.nodes[i].state
        else {
            return;
        };
        let poll_from = self.nodes[i].poll_from;
        if t > poll_from {
            self.nodes[i]
                .meter
                .charge(CpuCategory::Polling, t - poll_from);
            self.record_span(i, CpuCategory::Polling, poll_from, t - poll_from);
        }
        // Ignored-signal deliveries stole CPU while the node polled; the
        // lost time shows up as extra elapsed work now.
        let debt = std::mem::take(&mut self.nodes[i].interrupt_debt);
        self.nodes[i].engine.progress();
        let end = self.finish_call(i, t.max(poll_from) + debt);
        self.nodes[i].poll_from = end;
        if self.nodes[i].engine.test(req) {
            if let Some(ev) = deadline_event {
                self.queue.cancel(ev);
            }
            self.consume_outcome(i, req);
            self.nodes[i].gen += 1;
            self.maybe_synth_signal(i, end);
            self.advance_program(i, end);
        }
    }

    fn consume_outcome(&mut self, i: usize, req: ReqId) {
        match self.nodes[i].engine.take_outcome(req) {
            Some(Outcome::Data(d)) => self.nodes[i].ctx.last_data = Some(d),
            Some(Outcome::Done) | None => {}
            Some(Outcome::Failed(e)) => panic!("rank {i}: operation failed: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Program execution
    // ------------------------------------------------------------------

    /// Run program steps starting at `start` until the node blocks, starts
    /// a busy loop, or finishes.
    fn advance_program(&mut self, i: usize, start: SimTime) {
        let mut t = start.max(self.nodes[i].cpu_free_at);
        loop {
            self.nodes[i].ctx.now = t;
            let step = {
                let cell = &mut self.nodes[i];
                cell.program.next(&mut cell.ctx)
            };
            match step {
                Step::Busy(d) => {
                    self.nodes[i]
                        .trace
                        .emit(TraceEvent::EngineState { state: "busy" });
                    let end = t + d;
                    let gen = self.nodes[i].gen;
                    let event = self.queue.schedule(end, Ev::StepDone { node: i, gen });
                    self.nodes[i].state = NodeState::Busy { charge: d, event };
                    self.nodes[i].cpu_free_at = end;
                    return;
                }
                Step::WindowStart => {
                    self.nodes[i].meter.window_start();
                }
                Step::WindowStop => {
                    let w = self.nodes[i].meter.window_stop();
                    self.nodes[i].ctx.last_window = Some(w);
                }
                Step::Done => {
                    self.nodes[i]
                        .trace
                        .emit(TraceEvent::EngineState { state: "done" });
                    self.nodes[i].state = NodeState::Done;
                    self.nodes[i].gen += 1;
                    self.done_count += 1;
                    return;
                }
                Step::ReduceSplit {
                    root,
                    op,
                    dtype,
                    data,
                } => {
                    let comm = self.nodes[i].engine.world();
                    let req = self.nodes[i]
                        .engine
                        .ireduce_split(&comm, root, op, dtype, &data);
                    t = self.finish_call(i, t);
                    self.nodes[i].split_req = Some(req);
                    // Not a blocking call: fall through to the next step.
                }
                Step::BcastSplit { root, data, len } => {
                    let comm = self.nodes[i].engine.world();
                    let req = self.nodes[i].engine.ibcast_split(&comm, root, data, len);
                    t = self.finish_call(i, t);
                    self.nodes[i].split_req = Some(req);
                    // Not a blocking call: fall through to the next step.
                }
                Step::WaitSplit => {
                    let Some(req) = self.nodes[i].split_req.take() else {
                        continue;
                    };
                    if !self.nodes[i].engine.test(req) {
                        // Entering the wait triggers a progress pass, which
                        // drains packets that landed during application
                        // compute.
                        self.nodes[i].engine.progress();
                        t = self.finish_call(i, t);
                    }
                    if self.nodes[i].engine.test(req) {
                        self.consume_outcome(i, req);
                        continue;
                    }
                    self.block_on(i, req, t);
                    return;
                }
                step => {
                    // Blocking operations.
                    let req = self.post_blocking(i, step);
                    t = self.finish_call(i, t);
                    if !self.nodes[i].engine.test(req) {
                        // Entering a blocking call triggers the progress
                        // engine (Fig. 4 left entry): packets that arrived
                        // while the application was computing get matched
                        // before the node settles into its poll loop.
                        self.nodes[i].engine.progress();
                        t = self.finish_call(i, t);
                    }
                    if self.nodes[i].engine.test(req) {
                        self.consume_outcome(i, req);
                        self.maybe_synth_signal(i, t);
                        t = t.max(self.nodes[i].cpu_free_at);
                        continue;
                    }
                    self.block_on(i, req, t);
                    return;
                }
            }
        }
    }

    /// Enter the blocked state on `req` at time `t`. Returns true if the
    /// request completed synchronously after all (never happens today, but
    /// keeps the call site honest).
    fn block_on(&mut self, i: usize, req: ReqId, t: SimTime) -> bool {
        let deadline_event = self.nodes[i].engine.bounded_block_hint(req).map(|budget| {
            let gen = self.nodes[i].gen;
            self.queue.schedule(
                t + budget,
                Ev::Deadline {
                    node: i,
                    req: req.raw(),
                    gen,
                },
            )
        });
        self.nodes[i]
            .trace
            .emit(TraceEvent::EngineState { state: "blocked" });
        self.nodes[i].state = NodeState::Blocked {
            req,
            deadline_event,
        };
        self.nodes[i].poll_from = t;
        self.nodes[i].cpu_free_at = t;
        false
    }

    fn post_blocking(&mut self, i: usize, step: Step) -> ReqId {
        let comm = self.nodes[i].engine.world();
        let e = &mut self.nodes[i].engine;
        match step {
            Step::Reduce {
                root,
                op,
                dtype,
                data,
            } => e.ireduce(&comm, root, op, dtype, &data),
            Step::Allreduce { op, dtype, data } => e.iallreduce(&comm, op, dtype, &data),
            Step::Bcast { root, data, len } => e.ibcast(&comm, root, data, len),
            Step::Barrier => e.ibarrier(&comm),
            Step::Send { dst, tag, data } => e.isend(&comm, dst, tag, data),
            Step::Recv { src, tag, cap } => e.irecv(&comm, Some(src), TagSel::Is(tag), cap),
            other => unreachable!("not a blocking step: {other:?}"),
        }
    }
}
