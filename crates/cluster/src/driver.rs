//! The discrete-event driver.
//!
//! Runs one [`Program`] per node against one [`MessageEngine`] per node,
//! under virtual time:
//!
//! * **Blocking MPI calls** are emulated the way the default MPICH
//!   implementation actually behaves: the node's CPU busy-polls from the
//!   moment the call stalls until the packet that unblocks it arrives. The
//!   driver charges that whole wall-time span as polling CPU — which is
//!   precisely the cost the paper's application-bypass design eliminates
//!   for internal tree nodes.
//! * **Signals** follow §V-A: only collective-type packets raise them, only
//!   while the engine has them enabled, and a signal arriving while the
//!   node is already inside the progress engine (blocked-polling) is
//!   ignored — the poll loop will pick the packet up anyway. A delivered
//!   signal *preempts* whatever the node is doing (busy loops included),
//!   pushing the interrupted work's completion back by the handler time.
//! * **Bounded blocks** implement the §IV-E exit delay: when an engine
//!   reports a bounded-block hint for a request, the driver keeps the node
//!   polling inside the call until the budget expires, then calls
//!   [`MessageEngine::split_phase_exit`].
//! * **Heterogeneity**: protocol and handler CPU charges are scaled by the
//!   node's CPU class; packet delivery times come from the GM network model
//!   with per-class PCI/LANai costs and per-(src,dst) FIFO ordering.
//!
//! # Storage: struct-of-arrays rank state
//!
//! Per-rank state lives in index-addressed arenas (one `Vec` per field
//! class: engines, programs, meters, signal controls, hot scalars), not in
//! per-rank boxed cells. At 64k ranks the hot scalars for a rank are one
//! dense `RankState` row, and the driver is generic over the program type
//! `P` so homogeneous program lists run with no `Box<dyn Program>` vtable
//! hop (the boxed form still works via the default type parameter).
//!
//! # Execution: sequential and parallel-in-one-run
//!
//! [`DesDriver::run`] is the sequential executor: one event queue, FIFO
//! tie-breaking, byte-identical to the historical driver. For large
//! clusters, [`DesDriver::run_sharded`] partitions ranks into contiguous
//! region shards and advances them concurrently between conservative
//! synchronization horizons (a YAWNS-style window): with `T` the globally
//! earliest pending event and `L` the cost model's minimum cross-node
//! delivery latency ([`LinkCost::min_delivery_delay`]), every shard may
//! safely process all events strictly before `T + L`, because any packet a
//! handler in the window sends cannot arrive before `T + L`. Cross-shard
//! packets are exchanged through per-shard outboxes at each horizon.
//!
//! Determinism does not depend on the shard count: every event is stamped
//! with a `(origin rank, per-origin counter)` tie-break key, and each
//! origin's handlers run in the same order under any partitioning, so the
//! per-rank event sequences — and therefore all results — are identical for
//! 1, 2, or 8 shards. [`DesDriver::run_auto`] dispatches between the two
//! executors on the `ABR_DES_SHARDS` environment knob.

use crate::node::ClusterSpec;
use crate::program::{Obs, Program, Step, StepCtx};
use abr_des::meter::CpuCategory;
use abr_des::{CpuMeter, EventId, EventQueue, FxHashMap, SimDuration, SimTime};
use abr_fabric::FabricNetwork;
use abr_faults::{FaultInjector, FaultPlan, NodeReliability, RelConfig, RelEvent, RelStats};
use abr_gm::nic::{LinkCost, NodeHw};
use abr_gm::packet::{NodeId, Packet};
use abr_gm::signal::SignalControl;
use abr_mpr::engine::{Action, EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::types::TagSel;
use abr_mpr::ReqId;
use abr_trace::{TraceEvent, TraceHandle, Tracer};
use std::sync::mpsc;
use std::sync::Arc;

enum Ev {
    Deliver {
        node: usize,
        pkt: Packet,
    },
    StepDone {
        node: usize,
        gen: u64,
    },
    Deadline {
        node: usize,
        req: u64,
        gen: u64,
    },
    Kick {
        node: usize,
    },
    /// Retransmission-timer check for one node's reliability layer.
    RelTick {
        node: usize,
    },
}

/// Fault-injection + reliability state, present only when a non-empty
/// [`FaultPlan`] was installed. With no plan the driver's hot paths are
/// byte-for-byte the fault-free ones (cost neutrality).
struct FaultState {
    injector: FaultInjector,
    rel: Vec<NodeReliability>,
    /// Per-node pending [`Ev::RelTick`]: `(scheduled_at, event)`.
    tick: Vec<Option<(SimTime, EventId)>>,
}

/// Multi-tenant extension state, present only when the driver was built
/// through [`DesDriver::new_jobs`]. With `None` every hot path is
/// byte-for-byte the solo driver's — the same cost-neutrality discipline as
/// [`FaultState`].
///
/// Engines in a tenant run are built with *job-local* ranks (so packet
/// headers, communicators, and schedules all stay inside the job), and the
/// driver owns the translation to the shared cluster: a global arena index
/// per rank (`base_of[job] + local`), and a physical node per arena slot
/// (`phys_of`) through which co-located ranks serialize on one NIC and
/// contend for one CPU.
struct TenantState {
    /// Job of each global arena slot.
    job_of: Vec<u32>,
    /// First global arena slot of each job (ascending; one entry per job).
    base_of: Vec<usize>,
    /// Physical cluster node hosting each global arena slot.
    phys_of: Vec<usize>,
    /// Per-physical-node count of ranks currently blocked in a collective —
    /// i.e. busy-polling, burning CPU their node neighbours need. This is
    /// the CPU-contention signal: active work on a node is stretched by the
    /// number of *other* co-located pollers.
    polling_on_node: Vec<u32>,
}

enum NodeState {
    /// Executing a busy-loop step; `charge` is applied when it completes.
    Busy { charge: SimDuration, event: EventId },
    /// Inside a blocking MPI call, busy-polling.
    Blocked {
        req: ReqId,
        deadline_event: Option<EventId>,
    },
    /// Program finished.
    Done,
}

/// Hot per-rank scalars, one dense arena row per rank.
struct RankState {
    state: NodeState,
    /// When this node's CPU is next free.
    cpu_free_at: SimTime,
    /// While blocked: the instant polling (idle-burn) resumed.
    poll_from: SimTime,
    kick_pending: bool,
    /// Generation counter invalidating stale StepDone/Deadline/Kick events.
    gen: u64,
    /// Outstanding split-phase reduce request, if any.
    split_req: Option<ReqId>,
    /// Synthesized signals (enable-with-backlog edge).
    synth_signals: u64,
    /// CPU time consumed by delivered-but-ignored signals, applied to the
    /// node's cursor at the next wake.
    interrupt_debt: SimDuration,
    /// NIC time from the most recent `apply_charges` (drives NIC-side
    /// forwarding latency in the offload extension).
    last_nic_charge: SimDuration,
    /// Whether this rank is currently counted in its physical node's
    /// poller tally (tenant runs only; always `false` solo).
    polling_counted: bool,
}

impl RankState {
    fn fresh() -> Self {
        RankState {
            state: NodeState::Done, // replaced at start
            cpu_free_at: SimTime::ZERO,
            poll_from: SimTime::ZERO,
            kick_pending: false,
            gen: 0,
            split_req: None,
            synth_signals: 0,
            interrupt_debt: SimDuration::ZERO,
            last_nic_charge: SimDuration::ZERO,
            polling_counted: false,
        }
    }
}

/// A packet crossing shards: carries its arrival time and the tie-break key
/// its source shard already assigned, so the destination shard can insert
/// it into the globally consistent order.
struct OutMsg {
    at: SimTime,
    key: u64,
    dst: usize,
    pkt: Packet,
}

/// Coordinator-to-worker message in the parallel executor.
enum Cmd {
    /// Merge `inbox` into the shard's queue, then process every local event
    /// strictly before `horizon`.
    Window {
        horizon: SimTime,
        inbox: Vec<OutMsg>,
    },
    /// Run complete: return the shard core to the coordinator.
    Finish,
}

/// Worker-to-coordinator report after each window.
struct Rep {
    outbox: Vec<OutMsg>,
    /// `(time, key)` of the shard's next pending event.
    next: Option<(SimTime, u64)>,
    /// Cumulative events processed by this shard.
    events: u64,
    /// Programs finished in this shard.
    done: usize,
}

/// One recorded span of node activity (timeline introspection; used by the
/// Fig. 2 time-line reproduction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Node index.
    pub node: usize,
    /// What the node (or its NIC) was doing.
    pub kind: CpuCategory,
    /// Span start.
    pub start: SimTime,
    /// Span length.
    pub dur: SimDuration,
}

/// Per-node results extracted after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeResult {
    /// Observations recorded by the node's program.
    pub obs: Vec<Obs>,
    /// Total CPU charged, by category (µs).
    pub cpu_app_us: f64,
    /// Polling CPU (µs).
    pub cpu_poll_us: f64,
    /// Protocol CPU (µs).
    pub cpu_protocol_us: f64,
    /// Signal-handler CPU (µs).
    pub cpu_signal_us: f64,
    /// NIC-processor time (µs) — not host CPU.
    pub cpu_nic_us: f64,
    /// Signals actually taken.
    pub signals_raised: u64,
    /// Signals suppressed because progress was underway.
    pub signals_suppressed_busy: u64,
    /// Engine counters.
    pub counters: Vec<(&'static str, u64)>,
}

/// The per-shard simulation core: an event queue, a network, and the rank
/// arenas for the contiguous range `base .. base + len` of global ranks.
/// The sequential executor is a single core owning every rank.
struct Core<E: MessageEngine, P: Program> {
    /// First global rank owned by this core.
    base: usize,
    queue: EventQueue<Ev>,
    network: FabricNetwork,
    // ---- struct-of-arrays rank arenas (index = global rank - base) ----
    engines: Vec<E>,
    programs: Vec<P>,
    signals: Vec<SignalControl>,
    meters: Vec<CpuMeter>,
    ctxs: Vec<StepCtx>,
    rank: Vec<RankState>,
    traces: Vec<TraceHandle>,
    /// Hardware classes for **all** ranks (global index), `Copy`-cheap and
    /// read-only: transmits need the destination's class even when the
    /// destination lives in another shard.
    hw: Vec<NodeHw>,
    wire_seq: FxHashMap<(u32, u32), u64>,
    done_count: usize,
    packets_delivered: u64,
    /// Events processed by this core.
    events: u64,
    timeline: Option<Vec<TimelineEvent>>,
    /// Reused buffer for draining engine actions (see `route_actions`).
    action_scratch: Vec<Action>,
    faults: Option<FaultState>,
    tenant: Option<TenantState>,
    /// Stamp events with partition-independent `(origin, counter)` keys
    /// instead of the queue's FIFO sequence. Off for the sequential
    /// executor (byte-identical legacy order), on for the sharded one.
    keyed: bool,
    /// Per-owned-rank tie-break counters (keyed mode).
    key_ctr: Vec<u64>,
    /// Packets destined for ranks outside this core, exchanged at horizons.
    outbox: Vec<OutMsg>,
}

impl<E: MessageEngine, P: Program> Core<E, P> {
    fn len(&self) -> usize {
        self.programs.len()
    }

    #[inline]
    fn owns(&self, node: usize) -> bool {
        node >= self.base && node < self.base + self.programs.len()
    }

    /// Next tie-break key for an event originated by global rank `origin`:
    /// `(origin << 40) | counter`. The counter only advances inside
    /// `origin`'s own handlers, whose order is partition-independent, so
    /// the key sequence — and with it the merged event order — is the same
    /// for any shard count.
    #[inline]
    fn next_key(&mut self, origin: usize) -> u64 {
        let c = &mut self.key_ctr[origin - self.base];
        let key = ((origin as u64) << 40) | *c;
        *c += 1;
        debug_assert!(*c < (1 << 40), "per-origin event counter overflow");
        key
    }

    /// Schedule an event originated by `origin` (the rank whose handler is
    /// running). Sequential mode uses the queue's FIFO sequence; keyed mode
    /// stamps the partition-independent key.
    fn sched(&mut self, origin: usize, at: SimTime, ev: Ev) -> EventId {
        if self.keyed {
            let key = self.next_key(origin);
            self.queue.schedule_keyed(at, key, ev)
        } else {
            self.queue.schedule(at, ev)
        }
    }

    fn record_span(&mut self, node: usize, kind: CpuCategory, start: SimTime, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        if let Some(tl) = &mut self.timeline {
            tl.push(TimelineEvent {
                node,
                kind,
                start,
                dur,
            });
        }
    }

    // ------------------------------------------------------------------
    // Multi-tenant contention helpers
    // ------------------------------------------------------------------

    /// Wall-clock duration of `d` of CPU work on rank `i`'s host, under the
    /// tenant CPU-contention model: work is stretched by one extra multiple
    /// per *other* co-located rank that is currently busy-polling inside a
    /// blocking call (a deterministic timeslicing approximation, sampled
    /// when the work is scheduled). Solo drivers — and tenant ranks with no
    /// polling neighbours — take the `d`-unchanged early exits, so the
    /// pre-existing figures never see this arithmetic.
    #[inline]
    fn stretched(&self, i: usize, d: SimDuration) -> SimDuration {
        let Some(ts) = &self.tenant else {
            return d;
        };
        let mut others = ts.polling_on_node[ts.phys_of[i]];
        if self.rank[i - self.base].polling_counted {
            others -= 1; // don't contend with yourself
        }
        if others == 0 {
            return d;
        }
        SimDuration::from_nanos(d.as_nanos().saturating_mul(1 + others as u64))
    }

    /// Rank `i` entered a blocking call that busy-polls: count it against
    /// its node's CPU. Signal-driven engines in an unbounded wait park the
    /// core instead ([`MessageEngine::sleeps_when_blocked`]) and are never
    /// counted; a §IV-E *bounded* poll is a genuine spin regardless of the
    /// engine, so it always counts for its (short) window.
    #[inline]
    fn tenant_poll_start(&mut self, i: usize, bounded: bool) {
        let Some(ts) = &mut self.tenant else {
            return;
        };
        let l = i - self.base;
        debug_assert!(!self.rank[l].polling_counted, "double poll-start");
        if !bounded && self.engines[l].sleeps_when_blocked() {
            return;
        }
        ts.polling_on_node[ts.phys_of[i]] += 1;
        self.rank[l].polling_counted = true;
    }

    /// Rank `i` left its blocking call (completion or split-phase exit).
    /// A no-op for ranks that slept instead of polling.
    #[inline]
    fn tenant_poll_stop(&mut self, i: usize) {
        let Some(ts) = &mut self.tenant else {
            return;
        };
        let l = i - self.base;
        if !self.rank[l].polling_counted {
            return;
        }
        ts.polling_on_node[ts.phys_of[i]] -= 1;
        self.rank[l].polling_counted = false;
    }

    // ------------------------------------------------------------------
    // Engine service helpers
    // ------------------------------------------------------------------

    /// Drain the engine's CPU charges into the node meter, scaling host
    /// work by the CPU class and NIC work by the LANai clock. Returns the
    /// total *host* time (NIC work runs on the NIC processor, concurrently).
    fn apply_charges(&mut self, i: usize) -> SimDuration {
        let l = i - self.base;
        let c = self.engines[l].take_charges();
        let hw = self.hw[i];
        let protocol = hw.scale_cpu(c.protocol);
        let signal = hw.scale_cpu(c.signal);
        // Polling entry costs scale with the CPU too.
        let polling = hw.scale_cpu(c.polling);
        let nic = c.nic.scaled_f64(hw.lanai.per_packet_scale());
        let meter = &mut self.meters[l];
        meter.charge(CpuCategory::Polling, polling);
        meter.charge(CpuCategory::Protocol, protocol);
        meter.charge(CpuCategory::SignalHandler, signal);
        meter.charge(CpuCategory::NicOffload, nic);
        self.rank[l].last_nic_charge = nic;
        polling + protocol + signal
    }

    /// Route the engine's pending actions. Sends are stamped `stamp`.
    fn route_actions(&mut self, i: usize, stamp: SimTime) {
        let l = i - self.base;
        // Double-buffer: drain into a scratch vector that is returned to
        // the core afterwards, so steady-state routing allocates nothing.
        let mut actions = std::mem::take(&mut self.action_scratch);
        self.engines[l].drain_actions_into(&mut actions);
        for a in actions.drain(..) {
            match a {
                Action::Send(pkt) => self.transmit(i, pkt, stamp),
                Action::EnableSignals => {
                    self.signals[l].enable();
                }
                Action::DisableSignals => {
                    self.signals[l].disable();
                }
            }
        }
        self.action_scratch = actions;
    }

    /// Send one engine-originated packet at `stamp`. With faults installed
    /// the packet first passes through the sender's reliability layer
    /// (stamping `rel_seq`, buffering for retransmission); without, this is
    /// exactly the fault-free send.
    fn transmit(&mut self, i: usize, mut pkt: Packet, stamp: SimTime) {
        if let Some(f) = &mut self.faults {
            pkt = f.rel[i - self.base].on_send(pkt, stamp.as_nanos());
        }
        self.transmit_raw(i, pkt, stamp);
        if self.faults.is_some() {
            self.schedule_rel_tick(i, stamp);
        }
    }

    /// Tenant-mode transmit: packet headers carry *job-local* ranks, so the
    /// driver resolves the destination's global arena slot through the
    /// sender's job base, and computes delivery with the header temporarily
    /// rewritten to *physical node* ids — the network keys NIC-injection
    /// serialization and FIFO floors off header ids, so co-located ranks
    /// (any job) share one NIC clock exactly as they share hardware. The
    /// job-local header is restored before delivery, keeping the receiving
    /// engine's rank-addressing invariants intact. Per-(src,dst)-floor FIFO
    /// order survives the remap: a job pair's packets are a subsequence of
    /// its physical pair's, and the floor keeps the full sequence monotone.
    fn transmit_tenant(&mut self, i: usize, mut pkt: Packet, stamp: SimTime) {
        let ts = self.tenant.as_ref().expect("tenant transmit");
        let dst = ts.base_of[ts.job_of[i] as usize] + pkt.header.dst.index();
        let (psrc, pdst) = (ts.phys_of[i], ts.phys_of[dst]);
        // Wire seqs per *global* rank pair: distinct jobs' identical local
        // pairs must not share a counter.
        let seq = self.wire_seq.entry((i as u32, dst as u32)).or_insert(0);
        pkt.header.wire_seq = *seq;
        *seq += 1;
        let src_hw = self.hw[i];
        let dst_hw = self.hw[dst];
        let (local_src, local_dst) = (pkt.header.src, pkt.header.dst);
        pkt.header.src = NodeId(psrc as u32);
        pkt.header.dst = NodeId(pdst as u32);
        let arrive = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt);
        pkt.header.src = local_src;
        pkt.header.dst = local_dst;
        self.send_deliver(i, dst, arrive, pkt);
    }

    /// Put a packet on the wire: stamp `wire_seq`, run the fault injector,
    /// and schedule delivery for every surviving copy. Retransmissions and
    /// acks enter here directly (they bypass `on_send`).
    fn transmit_raw(&mut self, i: usize, mut pkt: Packet, stamp: SimTime) {
        if self.tenant.is_some() {
            // Fault injection is rejected at tenant construction, so the
            // whole reliability path stays solo-only.
            self.transmit_tenant(i, pkt, stamp);
            return;
        }
        let key = (pkt.header.src.0, pkt.header.dst.0);
        let seq = self.wire_seq.entry(key).or_insert(0);
        pkt.header.wire_seq = *seq;
        *seq += 1;
        let dst = pkt.header.dst.index();
        let src_hw = self.hw[i];
        let dst_hw = self.hw[dst];
        if self.faults.is_none() {
            let arrive = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt);
            self.send_deliver(i, dst, arrive, pkt);
            return;
        }
        let f = self.faults.as_mut().expect("checked above");
        let verdict = f.injector.decide(&pkt, Some(stamp.as_nanos()));
        if verdict.copies == 0 {
            // Dropped: the NIC and wire still did the work of sending it,
            // so charge network occupancy exactly as for a delivered packet.
            let _ = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt);
            return;
        }
        for _ in 0..verdict.copies {
            let arrive = self.network.delivery_time(stamp, &src_hw, &dst_hw, &pkt)
                + SimDuration::from_nanos(verdict.extra_delay_ns);
            // Faults imply the sequential executor (asserted in
            // `run_sharded`), so every destination is local.
            self.queue.schedule(
                arrive,
                Ev::Deliver {
                    node: dst,
                    pkt: pkt.clone(),
                },
            );
        }
    }

    /// Schedule (or outbox) a fault-free packet delivery.
    fn send_deliver(&mut self, src: usize, dst: usize, arrive: SimTime, pkt: Packet) {
        if self.owns(dst) {
            self.sched(src, arrive, Ev::Deliver { node: dst, pkt });
        } else {
            let key = self.next_key(src);
            self.outbox.push(OutMsg {
                at: arrive,
                key,
                dst,
                pkt,
            });
        }
    }

    /// (Re-)schedule node `i`'s retransmission-timer event to match its
    /// reliability layer's earliest deadline.
    fn schedule_rel_tick(&mut self, i: usize, now: SimTime) {
        let l = i - self.base;
        let Some(f) = &mut self.faults else {
            return;
        };
        let want = f.rel[l]
            .next_deadline()
            .map(|ns| SimTime::from_nanos(ns).max(now));
        match (want, f.tick[l]) {
            (None, None) => {}
            (None, Some((_, ev))) => {
                self.queue.cancel(ev);
                let f = self.faults.as_mut().expect("checked above");
                f.tick[l] = None;
            }
            (Some(at), Some((cur, _))) if cur == at => {}
            (Some(at), prev) => {
                if let Some((_, ev)) = prev {
                    self.queue.cancel(ev);
                }
                let ev = self.queue.schedule(at, Ev::RelTick { node: i });
                let f = self.faults.as_mut().expect("checked above");
                f.tick[l] = Some((at, ev));
            }
        }
    }

    /// A reliability timer fired: let node `i` retransmit what's overdue.
    fn on_rel_tick(&mut self, i: usize, t: SimTime) {
        let l = i - self.base;
        let mut out = Vec::new();
        {
            let Some(f) = &mut self.faults else {
                return;
            };
            f.tick[l] = None;
            f.rel[l].on_tick(t.as_nanos(), &mut out);
        }
        for e in out {
            match e {
                RelEvent::Transmit(p) => self.transmit_raw(i, p, t),
                RelEvent::LinkDead { peer } => {
                    panic!("rank {i}: link to rank {peer} declared dead (retry budget exhausted)")
                }
                RelEvent::Deliver(_) => unreachable!("ticks never deliver"),
            }
        }
        self.schedule_rel_tick(i, t);
    }

    /// The node just ran engine work inline at `t`: charge it, advance the
    /// CPU cursor, route outputs. Returns the new CPU-free instant. The
    /// meter records the CPU *work* `w`; the cursor advances by its
    /// (tenant-contention) wall-clock stretch.
    fn finish_call(&mut self, i: usize, t: SimTime) -> SimTime {
        let w = self.apply_charges(i);
        let wall = self.stretched(i, w);
        self.record_span(i, CpuCategory::Protocol, t, wall);
        let end = t + wall;
        self.rank[i - self.base].cpu_free_at = end;
        self.route_actions(i, end);
        end
    }

    /// Signals were just enabled while collective packets already sat in
    /// the receive queue (the enable-with-backlog edge §V-A must not lose):
    /// the NIC raises a signal immediately.
    fn maybe_synth_signal(&mut self, i: usize, t: SimTime) {
        let l = i - self.base;
        if matches!(self.rank[l].state, NodeState::Blocked { .. }) {
            return;
        }
        if self.signals[l].is_enabled() && self.engines[l].has_pending_signal_work() {
            self.rank[l].synth_signals += 1;
            self.run_handler(i, t);
        }
    }

    /// Deliver a signal: run the asynchronous handler, preempting whatever
    /// the node is doing.
    fn run_handler(&mut self, i: usize, t: SimTime) {
        let l = i - self.base;
        self.engines[l].handle_signal();
        let w = self.apply_charges(i);
        let w = self.stretched(i, w);
        self.record_span(i, CpuCategory::SignalHandler, t, w);
        match self.rank[l].state {
            NodeState::Busy { charge, event } => {
                // Preemption: the busy step finishes `w` later.
                let new_end = self.rank[l].cpu_free_at + w;
                self.queue.cancel(event);
                let gen = self.rank[l].gen;
                let new_event = self.sched(i, new_end, Ev::StepDone { node: i, gen });
                self.rank[l].state = NodeState::Busy {
                    charge,
                    event: new_event,
                };
                self.rank[l].cpu_free_at = new_end;
                self.route_actions(i, t + w);
            }
            _ => {
                let end = self.rank[l].cpu_free_at.max(t) + w;
                self.rank[l].cpu_free_at = end;
                self.route_actions(i, end);
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn on_deliver(&mut self, i: usize, pkt: Packet, t: SimTime) {
        if self.faults.is_some() {
            // Reliability pre-stage: acks are consumed here, duplicates are
            // suppressed, out-of-order data is resequenced; whatever is
            // ready flows on to the engine in `rel_seq` order.
            let mut out = Vec::new();
            {
                let f = self.faults.as_mut().expect("checked above");
                f.rel[i - self.base].on_receive(pkt, t.as_nanos(), &mut out);
            }
            for e in out {
                match e {
                    RelEvent::Deliver(p) => self.deliver_to_node(i, p, t),
                    RelEvent::Transmit(p) => self.transmit_raw(i, p, t),
                    RelEvent::LinkDead { peer } => {
                        panic!("rank {i}: link to rank {peer} declared dead")
                    }
                }
            }
            self.schedule_rel_tick(i, t);
            return;
        }
        self.deliver_to_node(i, pkt, t);
    }

    /// Hand one in-sequence packet to node `i`'s engine (the fault-free
    /// delivery path; under faults the reliability layer feeds this).
    fn deliver_to_node(&mut self, i: usize, pkt: Packet, t: SimTime) {
        let l = i - self.base;
        self.packets_delivered += 1;
        // NIC-side pre-processing (the §VII extension) happens at arrival,
        // on the NIC processor, regardless of what the host is doing.
        let Some(pkt) = self.engines[l].nic_preprocess(pkt) else {
            let _nic_host = self.apply_charges(i); // charges NIC meter; host part ~0
            debug_assert!(_nic_host.is_zero(), "NIC preprocessing charged host CPU");
            // The NIC serializes matching and arithmetic before it can
            // forward a result: the LANai's slow per-element ops delay the
            // result on its way up the tree (refs. \[9\]/\[11\]'s trade-off).
            let nic_busy = self.rank[l].last_nic_charge;
            self.record_span(i, CpuCategory::NicOffload, t, nic_busy);
            self.route_actions(i, t + nic_busy);
            if matches!(self.rank[l].state, NodeState::Blocked { .. }) {
                if t >= self.rank[l].cpu_free_at {
                    self.wake_blocked(i, t);
                } else if !self.rank[l].kick_pending {
                    self.rank[l].kick_pending = true;
                    let at = self.rank[l].cpu_free_at;
                    self.sched(i, at, Ev::Kick { node: i });
                }
            }
            return;
        };
        let blocked = matches!(self.rank[l].state, NodeState::Blocked { .. });
        let arrival = self.signals[l].on_arrival(&pkt, blocked);
        let signal = arrival.is_ok();
        if arrival == Err(abr_gm::signal::SignalSuppression::ProgressUnderway) {
            // The NIC still raised the signal; the kernel-to-user delivery
            // is paid even though the handler body is skipped (Fig. 4's
            // "simply ignored" signal is not free).
            let cost = self.network.cost().signal_ignored_cost();
            self.meters[l].charge(CpuCategory::SignalHandler, cost);
            self.rank[l].interrupt_debt += cost;
        }
        self.engines[l].deliver(pkt);
        if blocked {
            if t >= self.rank[l].cpu_free_at {
                self.wake_blocked(i, t);
            } else if !self.rank[l].kick_pending {
                self.rank[l].kick_pending = true;
                let at = self.rank[l].cpu_free_at;
                self.sched(i, at, Ev::Kick { node: i });
            }
        } else if signal {
            self.run_handler(i, t);
        }
        // Busy/Done without signal: the packet waits in the receive queue
        // until something triggers the progress engine — exactly the stock
        // MPICH behaviour the paper describes.
    }

    fn on_kick(&mut self, i: usize, t: SimTime) {
        // Kicks are deliberately NOT generation-checked: a kick scheduled
        // for one blocking call may fire during a later one, where it is a
        // harmless extra progress pass — but dropping it while leaving
        // `kick_pending` set would lose the wakeup entirely.
        let l = i - self.base;
        self.rank[l].kick_pending = false;
        if matches!(self.rank[l].state, NodeState::Blocked { .. }) {
            self.wake_blocked(i, t);
        }
    }

    fn on_step_done(&mut self, i: usize, gen: u64, t: SimTime) {
        let l = i - self.base;
        if self.rank[l].gen != gen {
            return;
        }
        let NodeState::Busy { charge, .. } = self.rank[l].state else {
            return;
        };
        // The busy loop's own CPU is charged on completion (handler
        // preemptions were charged separately as they happened).
        self.meters[l].charge(CpuCategory::Application, charge);
        // Approximate span: the busy loop ended at `t` after consuming
        // `charge` of CPU (handler preemptions interleave within it).
        let span_start = SimTime::from_nanos(t.as_nanos().saturating_sub(charge.as_nanos()));
        self.record_span(i, CpuCategory::Application, span_start, charge);
        self.rank[l].gen += 1;
        self.advance_program(i, t);
    }

    fn on_deadline(&mut self, i: usize, req_raw: u64, gen: u64, t: SimTime) {
        let l = i - self.base;
        if self.rank[l].gen != gen {
            return;
        }
        let NodeState::Blocked { req, .. } = self.rank[l].state else {
            return;
        };
        if req.raw() != req_raw {
            return;
        }
        // Charge the tail of the bounded poll.
        let poll_from = self.rank[l].poll_from;
        if t > poll_from {
            self.meters[l].charge(CpuCategory::Polling, t - poll_from);
            self.record_span(i, CpuCategory::Polling, poll_from, t - poll_from);
        }
        self.tenant_poll_stop(i);
        let exit_at = self.rank[l].cpu_free_at.max(t);
        self.engines[l].split_phase_exit(req);
        let end = self.finish_call(i, exit_at);
        debug_assert!(
            self.engines[l].test(req),
            "split exit must complete the call"
        );
        let _ = self.engines[l].take_outcome(req);
        self.rank[l].gen += 1;
        self.maybe_synth_signal(i, end);
        self.advance_program(i, end);
    }

    /// A blocked node's CPU gets new input at `t`: charge the poll burn,
    /// run the progress engine, and resume the program if the request
    /// completed.
    fn wake_blocked(&mut self, i: usize, t: SimTime) {
        let l = i - self.base;
        let NodeState::Blocked {
            req,
            deadline_event,
        } = self.rank[l].state
        else {
            return;
        };
        let poll_from = self.rank[l].poll_from;
        if t > poll_from {
            self.meters[l].charge(CpuCategory::Polling, t - poll_from);
            self.record_span(i, CpuCategory::Polling, poll_from, t - poll_from);
        }
        // Ignored-signal deliveries stole CPU while the node polled; the
        // lost time shows up as extra elapsed work now.
        let debt = std::mem::take(&mut self.rank[l].interrupt_debt);
        self.engines[l].progress();
        let end = self.finish_call(i, t.max(poll_from) + debt);
        self.rank[l].poll_from = end;
        if self.engines[l].test(req) {
            if let Some(ev) = deadline_event {
                self.queue.cancel(ev);
            }
            self.tenant_poll_stop(i);
            self.consume_outcome(i, req);
            self.rank[l].gen += 1;
            self.maybe_synth_signal(i, end);
            self.advance_program(i, end);
        }
    }

    fn consume_outcome(&mut self, i: usize, req: ReqId) {
        let l = i - self.base;
        match self.engines[l].take_outcome(req) {
            Some(Outcome::Data(d)) => self.ctxs[l].last_data = Some(d),
            Some(Outcome::Done) | None => {}
            Some(Outcome::Failed(e)) => panic!("rank {i}: operation failed: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // Program execution
    // ------------------------------------------------------------------

    /// Run program steps starting at `start` until the node blocks, starts
    /// a busy loop, or finishes.
    fn advance_program(&mut self, i: usize, start: SimTime) {
        let l = i - self.base;
        let mut t = start.max(self.rank[l].cpu_free_at);
        loop {
            self.ctxs[l].now = t;
            let step = self.programs[l].next(&mut self.ctxs[l]);
            match step {
                Step::Busy(d) => {
                    self.traces[l].emit(TraceEvent::EngineState { state: "busy" });
                    // `d` of CPU work; the wall span stretches under tenant
                    // CPU contention while the meter still charges `d`.
                    let end = t + self.stretched(i, d);
                    let gen = self.rank[l].gen;
                    let event = self.sched(i, end, Ev::StepDone { node: i, gen });
                    self.rank[l].state = NodeState::Busy { charge: d, event };
                    self.rank[l].cpu_free_at = end;
                    return;
                }
                Step::WindowStart => {
                    self.meters[l].window_start();
                }
                Step::WindowStop => {
                    let w = self.meters[l].window_stop();
                    self.ctxs[l].last_window = Some(w);
                }
                Step::Done => {
                    self.traces[l].emit(TraceEvent::EngineState { state: "done" });
                    self.rank[l].state = NodeState::Done;
                    self.rank[l].gen += 1;
                    self.done_count += 1;
                    return;
                }
                Step::ReduceSplit {
                    root,
                    op,
                    dtype,
                    data,
                } => {
                    let comm = self.engines[l].world();
                    let req = self.engines[l].ireduce_split(&comm, root, op, dtype, &data);
                    t = self.finish_call(i, t);
                    self.rank[l].split_req = Some(req);
                    // Not a blocking call: fall through to the next step.
                }
                Step::BcastSplit { root, data, len } => {
                    let comm = self.engines[l].world();
                    let req = self.engines[l].ibcast_split(&comm, root, data, len);
                    t = self.finish_call(i, t);
                    self.rank[l].split_req = Some(req);
                    // Not a blocking call: fall through to the next step.
                }
                Step::AllreduceDualSplit { op, dtype, data } => {
                    let comm = self.engines[l].world();
                    let req = self.engines[l].iallreduce_dual_split(&comm, op, dtype, &data);
                    t = self.finish_call(i, t);
                    self.rank[l].split_req = Some(req);
                    // Not a blocking call: fall through to the next step.
                }
                Step::WaitSplit => {
                    let Some(req) = self.rank[l].split_req.take() else {
                        continue;
                    };
                    if !self.engines[l].test(req) {
                        // Entering the wait triggers a progress pass, which
                        // drains packets that landed during application
                        // compute.
                        self.engines[l].progress();
                        t = self.finish_call(i, t);
                    }
                    if self.engines[l].test(req) {
                        self.consume_outcome(i, req);
                        continue;
                    }
                    self.block_on(i, req, t);
                    return;
                }
                step => {
                    // Blocking operations.
                    let req = self.post_blocking(i, step);
                    t = self.finish_call(i, t);
                    if !self.engines[l].test(req) {
                        // Entering a blocking call triggers the progress
                        // engine (Fig. 4 left entry): packets that arrived
                        // while the application was computing get matched
                        // before the node settles into its poll loop.
                        self.engines[l].progress();
                        t = self.finish_call(i, t);
                    }
                    if self.engines[l].test(req) {
                        self.consume_outcome(i, req);
                        self.maybe_synth_signal(i, t);
                        t = t.max(self.rank[l].cpu_free_at);
                        continue;
                    }
                    self.block_on(i, req, t);
                    return;
                }
            }
        }
    }

    /// Enter the blocked state on `req` at time `t`.
    fn block_on(&mut self, i: usize, req: ReqId, t: SimTime) {
        let budget = self.engines[i - self.base].bounded_block_hint(req);
        let deadline_event = budget.map(|budget| {
            let gen = self.rank[i - self.base].gen;
            self.sched(
                i,
                t + budget,
                Ev::Deadline {
                    node: i,
                    req: req.raw(),
                    gen,
                },
            )
        });
        let l = i - self.base;
        self.traces[l].emit(TraceEvent::EngineState { state: "blocked" });
        self.rank[l].state = NodeState::Blocked {
            req,
            deadline_event,
        };
        self.rank[l].poll_from = t;
        self.rank[l].cpu_free_at = t;
        self.tenant_poll_start(i, budget.is_some());
    }

    fn post_blocking(&mut self, i: usize, step: Step) -> ReqId {
        let l = i - self.base;
        let comm = self.engines[l].world();
        let e = &mut self.engines[l];
        match step {
            Step::Reduce {
                root,
                op,
                dtype,
                data,
            } => e.ireduce(&comm, root, op, dtype, &data),
            Step::Allreduce { op, dtype, data } => e.iallreduce(&comm, op, dtype, &data),
            Step::AllreduceDual { op, dtype, data } => e.iallreduce_dual(&comm, op, dtype, &data),
            Step::Bcast { root, data, len } => e.ibcast(&comm, root, data, len),
            Step::Barrier => e.ibarrier(&comm),
            Step::Send { dst, tag, data } => e.isend(&comm, dst, tag, data),
            Step::Recv { src, tag, cap } => e.irecv(&comm, Some(src), TagSel::Is(tag), cap),
            other => unreachable!("not a blocking step: {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Executors
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ev: Ev, at: SimTime) {
        match ev {
            Ev::Deliver { node, pkt } => self.on_deliver(node, pkt, at),
            Ev::StepDone { node, gen } => self.on_step_done(node, gen, at),
            Ev::Deadline { node, req, gen } => self.on_deadline(node, req, gen, at),
            Ev::Kick { node } => self.on_kick(node, at),
            Ev::RelTick { node } => self.on_rel_tick(node, at),
        }
    }

    /// Bootstrap every owned program at time zero.
    fn init_programs(&mut self) {
        for l in 0..self.len() {
            self.advance_program(self.base + l, SimTime::ZERO);
        }
    }

    /// Process every pending event strictly before `horizon` (all of them
    /// when `horizon` is `None`). Cross-shard sends accumulate in the
    /// outbox.
    fn run_window(&mut self, horizon: Option<SimTime>, max_events: u64) {
        loop {
            if let Some(h) = horizon {
                match self.queue.peek_coord() {
                    Some((at, _)) if at < h => {}
                    _ => return,
                }
            }
            let Some(ev) = self.queue.pop() else { return };
            self.events += 1;
            assert!(self.events <= max_events, "event cap exceeded: livelock?");
            let at = ev.at;
            self.dispatch(ev.payload, at);
        }
    }

    fn panic_deadlock(&self) -> ! {
        let stuck: Vec<usize> = self
            .rank
            .iter()
            .enumerate()
            .filter(|(_, c)| !matches!(c.state, NodeState::Done))
            .map(|(l, _)| self.base + l)
            .collect();
        panic!("DES deadlock: nodes {stuck:?} never finished");
    }

    /// The historical sequential loop: pop until every program is done,
    /// panic on deadlock. Byte-identical to the pre-arena driver.
    fn run_seq(&mut self, max_events: u64) {
        let n = self.len();
        self.init_programs();
        while self.done_count < n {
            let Some(ev) = self.queue.pop() else {
                self.panic_deadlock();
            };
            self.events += 1;
            assert!(self.events <= max_events, "event cap exceeded: livelock?");
            let at = ev.at;
            self.dispatch(ev.payload, at);
        }
    }

    /// Split this core's rank arenas into `starts.len()` contiguous shard
    /// cores (`starts[s]` = first global rank of shard `s`), leaving this
    /// core empty. Shards get fresh queues and networks; `hw` (read-only)
    /// is replicated.
    fn split(&mut self, starts: &[usize]) -> Vec<Core<E, P>> {
        let mut cores: Vec<Core<E, P>> = Vec::with_capacity(starts.len());
        for &start in starts.iter().rev() {
            let key_ctr = self.key_ctr.split_off(start);
            cores.push(Core {
                base: start,
                queue: EventQueue::new(),
                network: self.network.fresh_like(),
                engines: self.engines.split_off(start),
                programs: self.programs.split_off(start),
                signals: self.signals.split_off(start),
                meters: self.meters.split_off(start),
                ctxs: self.ctxs.split_off(start),
                rank: self.rank.split_off(start),
                traces: self.traces.split_off(start),
                hw: self.hw.clone(),
                wire_seq: FxHashMap::default(),
                done_count: 0,
                packets_delivered: 0,
                events: 0,
                timeline: None,
                action_scratch: Vec::new(),
                faults: None,
                tenant: None,
                keyed: true,
                key_ctr,
                outbox: Vec::new(),
            });
        }
        cores.reverse();
        cores
    }

    /// Re-absorb shard cores (in shard order) after a parallel run,
    /// restoring the rank arenas in global order and summing counters.
    /// Returns the latest virtual time any shard reached.
    fn absorb_shards(&mut self, cores: Vec<Core<E, P>>) -> SimTime {
        let mut latest = SimTime::ZERO;
        for c in cores {
            debug_assert_eq!(c.base, self.base + self.len(), "shards out of order");
            self.engines.extend(c.engines);
            self.programs.extend(c.programs);
            self.signals.extend(c.signals);
            self.meters.extend(c.meters);
            self.ctxs.extend(c.ctxs);
            self.rank.extend(c.rank);
            self.traces.extend(c.traces);
            self.key_ctr.extend(c.key_ctr);
            self.done_count += c.done_count;
            self.packets_delivered += c.packets_delivered;
            self.events += c.events;
            self.network.absorb(&c.network);
            for (k, v) in c.wire_seq {
                self.wire_seq.insert(k, v);
            }
            latest = latest.max(c.queue.now());
        }
        latest
    }

    /// Worker-side window report: drained outbox plus queue status.
    fn report(&mut self) -> Rep {
        Rep {
            outbox: std::mem::take(&mut self.outbox),
            next: self.queue.peek_coord(),
            events: self.events,
            done: self.done_count,
        }
    }
}

/// The discrete-event driver. See module docs. Generic over the engine `E`
/// and the program type `P`; `P` defaults to `Box<dyn Program>` so
/// heterogeneous (type-erased) program lists keep working unchanged.
pub struct DesDriver<E: MessageEngine, P: Program = Box<dyn Program>> {
    core: Core<E, P>,
    max_events: u64,
    /// Total packets delivered (synced from the core after each run).
    pub packets_delivered: u64,
    tracer: Option<Arc<dyn Tracer>>,
    /// Latest virtual time reached by any shard of a parallel run;
    /// [`DesDriver::now`] folds it into the sequential queue clock.
    now_floor: SimTime,
    started: bool,
}

impl<E: MessageEngine, P: Program> DesDriver<E, P> {
    /// Build a driver for `spec`, constructing one engine per rank with
    /// `make_engine` and running `programs[rank]` on it.
    pub fn new(
        spec: &ClusterSpec,
        make_engine: impl FnMut(u32, EngineConfig) -> E,
        programs: Vec<P>,
    ) -> Self {
        Self::new_tuned(spec, make_engine, programs, |_| {})
    }

    /// [`DesDriver::new`] with a hook to adjust the derived [`EngineConfig`]
    /// before engines are built (e.g. `shared_schedules = false` to emulate
    /// the pre-registry per-engine schedule builds in the scale benchmark).
    pub fn new_tuned(
        spec: &ClusterSpec,
        mut make_engine: impl FnMut(u32, EngineConfig) -> E,
        programs: Vec<P>,
        tune: impl FnOnce(&mut EngineConfig),
    ) -> Self {
        let n = spec.len();
        assert_eq!(programs.len(), n, "one program per rank");
        assert!(n >= 1);
        let mut config = EngineConfig {
            cost: spec.cost.clone(),
            eager_limit: spec.eager_limit,
            memory_budget: None,
            allreduce_rs_threshold: 2048,
            topology: spec.topology,
            shared_schedules: true,
            segments: spec.segments,
        };
        tune(&mut config);
        let core = Core {
            base: 0,
            queue: EventQueue::new(),
            network: FabricNetwork::new(spec.cost.clone(), spec.fabric.clone(), n as u32),
            engines: (0..n)
                .map(|i| make_engine(i as u32, config.clone()))
                .collect(),
            programs,
            signals: (0..n).map(|_| SignalControl::new()).collect(),
            meters: (0..n).map(|_| CpuMeter::new()).collect(),
            ctxs: (0..n).map(|_| StepCtx::new()).collect(),
            rank: (0..n).map(|_| RankState::fresh()).collect(),
            traces: vec![TraceHandle::default(); n],
            hw: spec.nodes.clone(),
            wire_seq: FxHashMap::default(),
            done_count: 0,
            packets_delivered: 0,
            events: 0,
            timeline: None,
            action_scratch: Vec::new(),
            faults: None,
            tenant: None,
            keyed: false,
            key_ctr: vec![0; n],
            outbox: Vec::new(),
        };
        DesDriver {
            core,
            max_events: 2_000_000_000,
            packets_delivered: 0,
            tracer: None,
            now_floor: SimTime::ZERO,
            started: false,
        }
    }

    /// Build a *multi-tenant* driver: one engine set per job, all jobs
    /// co-scheduled on the cluster `spec` describes.
    ///
    /// `placements[job][local_rank]` names the physical node (an index into
    /// `spec.nodes`) hosting that rank; several ranks — same job or
    /// different jobs — may share a node, in which case they serialize on
    /// its NIC-injection clock and stretch each other's CPU work (the
    /// tenant contention model). Engines are constructed with **job-local**
    /// ranks
    /// via `make_engine(job, rank, job_size, config)`, so each job is a
    /// self-contained world: its packets, communicators, and collective
    /// sequence numbers never observe the other tenants. The factory should
    /// rebind the engine's world communicator to
    /// `Communicator::job(job, size)` so collective-seq namespaces are
    /// per-job (job 0's is the classic world — a single-job tenant run with
    /// [`abr_jobs::Placement::identity`] is bit-identical to
    /// [`DesDriver::new`], which the equivalence tests pin).
    ///
    /// Results come back flattened in job-major order ([`DesDriver::results`])
    /// or pre-sliced per job ([`DesDriver::results_by_job`]).
    ///
    /// # Panics
    /// Panics on shape mismatches (placement vs. program counts, node
    /// indices outside the cluster) or an empty job list.
    pub fn new_jobs(
        spec: &ClusterSpec,
        placements: &[Vec<usize>],
        mut make_engine: impl FnMut(u32, u32, u32, EngineConfig) -> E,
        programs: Vec<Vec<P>>,
    ) -> Self {
        let phys_nodes = spec.len();
        assert!(
            !placements.is_empty(),
            "a tenant run needs at least one job"
        );
        assert_eq!(programs.len(), placements.len(), "one program set per job");
        let config = EngineConfig {
            cost: spec.cost.clone(),
            eager_limit: spec.eager_limit,
            memory_budget: None,
            allreduce_rs_threshold: 2048,
            topology: spec.topology,
            shared_schedules: true,
            segments: spec.segments,
        };
        let mut job_of = Vec::new();
        let mut base_of = Vec::with_capacity(placements.len());
        let mut phys_of = Vec::new();
        let mut hw = Vec::new();
        let mut engines = Vec::new();
        for (j, hosts) in placements.iter().enumerate() {
            assert_eq!(
                programs[j].len(),
                hosts.len(),
                "job {j}: one program per rank"
            );
            assert!(!hosts.is_empty(), "job {j} has no ranks");
            base_of.push(job_of.len());
            let size = hosts.len() as u32;
            for (r, &p) in hosts.iter().enumerate() {
                assert!(
                    p < phys_nodes,
                    "job {j} rank {r}: node {p} outside the {phys_nodes}-node cluster"
                );
                job_of.push(j as u32);
                phys_of.push(p);
                hw.push(spec.nodes[p]);
                engines.push(make_engine(j as u32, r as u32, size, config.clone()));
            }
        }
        let programs: Vec<P> = programs.into_iter().flatten().collect();
        let n = programs.len();
        let tenant = TenantState {
            job_of,
            base_of,
            phys_of,
            polling_on_node: vec![0; phys_nodes],
        };
        let core = Core {
            base: 0,
            queue: EventQueue::new(),
            // The network is sized (and addressed) by *physical* nodes:
            // tenant transmits rewrite header ids to physical before asking
            // for a delivery time.
            network: FabricNetwork::new(spec.cost.clone(), spec.fabric.clone(), phys_nodes as u32),
            engines,
            programs,
            signals: (0..n).map(|_| SignalControl::new()).collect(),
            meters: (0..n).map(|_| CpuMeter::new()).collect(),
            ctxs: (0..n).map(|_| StepCtx::new()).collect(),
            rank: (0..n).map(|_| RankState::fresh()).collect(),
            traces: vec![TraceHandle::default(); n],
            hw,
            wire_seq: FxHashMap::default(),
            done_count: 0,
            packets_delivered: 0,
            events: 0,
            timeline: None,
            action_scratch: Vec::new(),
            faults: None,
            tenant: Some(tenant),
            keyed: false,
            key_ctr: vec![0; n],
            outbox: Vec::new(),
        };
        DesDriver {
            core,
            max_events: 2_000_000_000,
            packets_delivered: 0,
            tracer: None,
            now_floor: SimTime::ZERO,
            started: false,
        }
    }

    /// The per-job rank→job map of a tenant driver (global arena order), or
    /// `None` for a solo driver. Feed this to
    /// `abr_trace::RingRecorder::set_job_map` so trace events carry job ids.
    pub fn job_map(&self) -> Option<Vec<u32>> {
        self.core.tenant.as_ref().map(|t| t.job_of.clone())
    }

    /// Per-job result slices of a tenant run, in job-id order.
    ///
    /// # Panics
    /// Panics when called on a solo (non-tenant) driver.
    pub fn results_by_job(&self) -> Vec<Vec<NodeResult>> {
        let flat = self.results();
        let ts = self
            .core
            .tenant
            .as_ref()
            .expect("results_by_job requires a driver built with new_jobs");
        let mut out = Vec::with_capacity(ts.base_of.len());
        for (j, &start) in ts.base_of.iter().enumerate() {
            let end = ts.base_of.get(j + 1).copied().unwrap_or(flat.len());
            out.push(flat[start..end].to_vec());
        }
        out
    }

    /// Wire a [`Tracer`] through the whole stack: each rank's CPU meter,
    /// engine, signal control and (when faults are installed) reliability
    /// layer gets a per-rank handle, the network emits per-segment wire
    /// charges, and the event queue publishes virtual time to the recorder
    /// on every pop. With no tracer installed every one of those sites is a
    /// single `Option` branch (cost neutrality, like [`FaultPlan::none`]).
    pub fn install_tracer(&mut self, tracer: Arc<dyn Tracer>) {
        let core = &mut self.core;
        core.queue.set_tracer(TraceHandle::new(tracer.clone(), 0));
        core.network.set_tracer(TraceHandle::new(tracer.clone(), 0));
        for l in 0..core.len() {
            let h = TraceHandle::new(tracer.clone(), l as u32);
            core.meters[l].set_tracer(h.clone());
            core.signals[l].set_tracer(h.clone());
            core.engines[l].set_tracer(h.clone());
            core.traces[l] = h;
        }
        if let Some(f) = &mut core.faults {
            f.injector.set_tracer(TraceHandle::new(tracer.clone(), 0));
            for (i, r) in f.rel.iter_mut().enumerate() {
                r.set_tracer(TraceHandle::new(tracer.clone(), i as u32));
            }
        }
        self.tracer = Some(tracer);
    }

    /// Install a fault plan and the reliability layer that tolerates it.
    /// A [`FaultPlan::none`] plan is a no-op: the driver keeps its
    /// fault-free hot paths and pays nothing.
    pub fn set_faults(&mut self, plan: &FaultPlan, rel_cfg: RelConfig) {
        if plan.is_none() {
            return;
        }
        assert!(
            self.core.tenant.is_none(),
            "fault injection is not supported on multi-tenant drivers: the \
             reliability layer addresses packets by global rank, which tenant \
             headers (job-local) would alias"
        );
        let n = self.core.len();
        let mut state = FaultState {
            injector: FaultInjector::new(plan.clone()),
            rel: (0..n)
                .map(|i| NodeReliability::new(i as u32, rel_cfg))
                .collect(),
            tick: vec![None; n],
        };
        if let Some(tracer) = &self.tracer {
            state
                .injector
                .set_tracer(TraceHandle::new(tracer.clone(), 0));
            for (i, r) in state.rel.iter_mut().enumerate() {
                r.set_tracer(TraceHandle::new(tracer.clone(), i as u32));
            }
        }
        self.core.faults = Some(state);
    }

    /// Aggregate reliability-layer counters across all nodes, if the fault
    /// layer is active.
    pub fn rel_stats(&self) -> Option<RelStats> {
        self.core.faults.as_ref().map(|f| {
            let mut total = RelStats::default();
            for r in &f.rel {
                total.merge(&r.stats());
            }
            total
        })
    }

    /// Record a timeline of per-node activity spans (off by default; it
    /// costs memory proportional to the event count).
    pub fn with_timeline(mut self) -> Self {
        self.core.timeline = Some(Vec::new());
        self
    }

    /// The recorded timeline, if enabled.
    pub fn timeline(&self) -> Option<&[TimelineEvent]> {
        self.core.timeline.as_deref()
    }

    /// Cap the number of events (runaway protection in tests).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Run to completion (every program `Done`) on the sequential executor.
    ///
    /// # Panics
    /// Panics on deadlock (event queue drained with programs unfinished) or
    /// on exceeding the event cap.
    pub fn run(&mut self) {
        self.started = true;
        self.core.run_seq(self.max_events);
        self.packets_delivered = self.core.packets_delivered;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.queue.now().max(self.now_floor)
    }

    /// Events processed so far (summed across shards after a parallel run).
    pub fn events_processed(&self) -> u64 {
        self.core.events
    }

    /// The network (post-run statistics).
    pub fn network(&self) -> &FabricNetwork {
        &self.core.network
    }

    /// Extract per-node results.
    pub fn results(&self) -> Vec<NodeResult> {
        let core = &self.core;
        (0..core.len())
            .map(|l| NodeResult {
                obs: core.ctxs[l].obs.clone(),
                cpu_app_us: core.meters[l]
                    .category(CpuCategory::Application)
                    .as_us_f64(),
                cpu_poll_us: core.meters[l].category(CpuCategory::Polling).as_us_f64(),
                cpu_protocol_us: core.meters[l].category(CpuCategory::Protocol).as_us_f64(),
                cpu_signal_us: core.meters[l]
                    .category(CpuCategory::SignalHandler)
                    .as_us_f64(),
                cpu_nic_us: core.meters[l].category(CpuCategory::NicOffload).as_us_f64(),
                signals_raised: core.signals[l].raised() + core.rank[l].synth_signals,
                signals_suppressed_busy: core.signals[l].suppressed_progress_underway(),
                counters: core.engines[l].counters(),
            })
            .collect()
    }
}

impl<E: MessageEngine + Send, P: Program> DesDriver<E, P> {
    /// Run to completion on the parallel-in-one-run conservative executor:
    /// ranks are partitioned into `shards` contiguous regions, each advanced
    /// by its own worker between synchronization horizons `T + L` (`T` =
    /// globally earliest pending event, `L` = the cost model's minimum
    /// delivery latency). Results are identical for every shard count; see
    /// the module docs for the determinism argument.
    ///
    /// Unlike [`DesDriver::run`], the parallel executor drains *all* events
    /// (stray deliveries to finished nodes included) rather than stopping at
    /// the instant the last program finishes — a partition-independent
    /// stopping rule. Figures derived from per-node results are unaffected.
    ///
    /// # Panics
    /// Panics if the driver has already run, or if fault injection, tracing,
    /// or the timeline is installed (their state is inherently order-
    /// dependent; use the sequential executor — [`DesDriver::run_auto`]
    /// falls back automatically).
    pub fn run_sharded(&mut self, shards: usize) {
        assert!(!self.started, "run_sharded requires a fresh driver");
        assert!(
            self.core.network.is_flat(),
            "parallel execution requires the flat (contention-free) fabric: per-link \
             busy clocks are global order-dependent state that cannot be sharded; \
             unset ABR_FABRIC (or set ABR_FABRIC=flat) or drop ABR_DES_SHARDS"
        );
        self.started = true;
        assert!(
            self.core.faults.is_none(),
            "parallel execution does not support fault injection; use run()"
        );
        assert!(
            self.core.tenant.is_none(),
            "parallel execution does not support multi-tenant drivers: the \
             per-node poller tallies are global order-dependent state; use run()"
        );
        assert!(
            self.tracer.is_none(),
            "parallel execution does not support tracing; use run()"
        );
        assert!(
            self.core.timeline.is_none(),
            "parallel execution does not support the timeline; use run()"
        );
        let n = self.core.len();
        let shards = shards.clamp(1, n);
        let max_events = self.max_events;
        self.core.keyed = true;
        if shards == 1 {
            // Same keyed order and same full-drain stopping rule as the
            // multi-shard path, without the worker machinery.
            self.core.init_programs();
            self.core.run_window(None, max_events);
            if self.core.done_count < n {
                self.core.panic_deadlock();
            }
            self.now_floor = self.core.queue.now();
            self.packets_delivered = self.core.packets_delivered;
            return;
        }
        let lookahead = self.core.network.min_delivery_delay(&self.core.hw);
        assert!(
            !lookahead.is_zero(),
            "cost model has zero minimum delivery latency; no conservative lookahead exists"
        );
        // Contiguous region partition: shard s owns starts[s]..starts[s+1].
        let starts: Vec<usize> = (0..shards).map(|s| s * n / shards).collect();
        let cores = self.core.split(&starts);
        let cores = std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(shards);
            let mut rxs = Vec::with_capacity(shards);
            let mut handles = Vec::with_capacity(shards);
            for mut core in cores {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
                let (rep_tx, rep_rx) = mpsc::channel::<Rep>();
                handles.push(scope.spawn(move || {
                    core.init_programs();
                    rep_tx.send(core.report()).expect("coordinator alive");
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::Window { horizon, inbox } => {
                                for m in inbox {
                                    core.queue.schedule_keyed(
                                        m.at,
                                        m.key,
                                        Ev::Deliver {
                                            node: m.dst,
                                            pkt: m.pkt,
                                        },
                                    );
                                }
                                core.run_window(Some(horizon), max_events);
                                rep_tx.send(core.report()).expect("coordinator alive");
                            }
                            Cmd::Finish => break,
                        }
                    }
                    core
                }));
                txs.push(cmd_tx);
                rxs.push(rep_rx);
            }
            let mut inboxes: Vec<Vec<OutMsg>> = (0..shards).map(|_| Vec::new()).collect();
            loop {
                let mut reps: Vec<Rep> = rxs
                    .iter()
                    .map(|rx| rx.recv().expect("worker alive"))
                    .collect();
                let total_events: u64 = reps.iter().map(|r| r.events).sum();
                assert!(total_events <= max_events, "event cap exceeded: livelock?");
                let done: usize = reps.iter().map(|r| r.done).sum();
                let mut t_min: Option<(SimTime, u64)> = reps.iter().filter_map(|r| r.next).min();
                for rep in &mut reps {
                    for m in rep.outbox.drain(..) {
                        let coord = (m.at, m.key);
                        t_min = Some(match t_min {
                            Some(b) if b <= coord => b,
                            _ => coord,
                        });
                        let s = starts.partition_point(|&b| b <= m.dst) - 1;
                        inboxes[s].push(m);
                    }
                }
                let Some((t0, _)) = t_min else {
                    if done < n {
                        panic!("DES deadlock: {done}/{n} programs finished with no events pending");
                    }
                    break;
                };
                let horizon = t0 + lookahead;
                for (s, tx) in txs.iter().enumerate() {
                    tx.send(Cmd::Window {
                        horizon,
                        inbox: std::mem::take(&mut inboxes[s]),
                    })
                    .expect("worker alive");
                }
            }
            for tx in &txs {
                tx.send(Cmd::Finish).expect("worker alive");
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect::<Vec<_>>()
        });
        self.now_floor = self.core.absorb_shards(cores);
        self.packets_delivered = self.core.packets_delivered;
        assert_eq!(self.core.done_count, n, "absorbed shards lost completions");
    }

    /// Dispatch on the `ABR_DES_SHARDS` environment knob: run the parallel
    /// executor with that many shards when set (and no order-dependent
    /// instrumentation — faults, tracer, timeline — is installed), the
    /// sequential executor otherwise. Invalid values fail fast, naming the
    /// variable.
    pub fn run_auto(&mut self) {
        let shards =
            abr_trace::parse_env("ABR_DES_SHARDS", |raw| match raw.trim().parse::<usize>() {
                Ok(0) | Err(_) => Err(format!(
                    "ABR_DES_SHARDS: expected a positive shard count, got {raw:?}"
                )),
                Ok(s) => Ok(s),
            });
        if shards.is_some() && !self.core.network.is_flat() {
            // Fail fast rather than silently running sequentially: the user
            // asked for two things that cannot be combined.
            panic!(
                "ABR_DES_SHARDS is set but ABR_FABRIC={} models link contention, \
                 which the sharded executor cannot replay deterministically; \
                 unset one of the two variables",
                self.core.network.spec().label()
            );
        }
        let mut reasons: Vec<&str> = Vec::new();
        if self.core.faults.is_some() {
            reasons.push("fault injection");
        }
        if self.core.tenant.is_some() {
            reasons.push("multi-tenant state");
        }
        if self.tracer.is_some() {
            reasons.push("tracing");
        }
        if self.core.timeline.is_some() {
            reasons.push("the timeline");
        }
        match shards {
            Some(s) if reasons.is_empty() => self.run_sharded(s),
            Some(_) => {
                eprintln!(
                    "abr_cluster: ABR_DES_SHARDS ignored — {} installed; falling back \
                     to the sequential executor (results are unchanged, only slower)",
                    reasons.join(" + ")
                );
                self.run()
            }
            None => self.run(),
        }
    }
}
