//! Deterministic parallel sweep executor.
//!
//! The figure and ablation sweeps evaluate hundreds of independent
//! configuration points — each one a complete discrete-event simulation
//! that is a pure function of its config (every run derives its randomness
//! from `cfg.seed`). That makes them embarrassingly parallel *and*
//! trivially deterministic: this module fans the points out across worker
//! threads that pull indices from a shared atomic counter, collects each
//! result under its original index, and returns them in input order.
//! Output is therefore **bit-identical** to the sequential path at any
//! worker count.
//!
//! Worker count comes from the `ABR_JOBS` environment variable (default:
//! all available cores) or explicitly via [`Sweep::with_jobs`]. One job —
//! or one point — short-circuits to a plain sequential loop with no
//! threads spawned.

use crate::microbench::{
    run_app_bench, run_bcast_util, run_cpu_util, run_latency, AppBenchConfig, AppBenchResult,
    CpuUtilConfig, CpuUtilResult, LatencyConfig, LatencyResult,
};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count from `ABR_JOBS`, falling back to the number of available
/// cores when the variable is unset.
///
/// # Panics
/// Panics on a set-but-invalid `ABR_JOBS` (non-numeric or zero) — a typo'd
/// job count must not silently fall back to a different parallelism.
pub fn jobs_from_env() -> usize {
    abr_trace::parse_env("ABR_JOBS", parse_jobs).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Parse an explicit `ABR_JOBS` value: a positive integer.
pub fn parse_jobs(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("ABR_JOBS must be a positive worker count, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "ABR_JOBS must be a positive worker count, got {raw:?}"
        )),
    }
}

/// Total sweep points executed by this process (all `Sweep` instances);
/// lets callers attribute point counts to phases without threading a
/// counter through every figure function.
static POINTS_RUN: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of sweep points executed so far.
pub fn points_run() -> u64 {
    POINTS_RUN.load(Ordering::Relaxed)
}

/// A parallel executor for independent, deterministic config points.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    jobs: usize,
}

impl Sweep {
    /// An executor sized from `ABR_JOBS` / available cores.
    pub fn from_env() -> Self {
        Sweep {
            jobs: jobs_from_env(),
        }
    }

    /// An executor with an explicit worker count (min 1).
    pub fn with_jobs(jobs: usize) -> Self {
        Sweep { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate `f` over every item, returning results in input order.
    ///
    /// Workers claim items by pulling the next index off a shared atomic
    /// counter, so load-balancing is dynamic (a slow 256-node point does
    /// not hold up neighbours), while results are scattered back by index
    /// — the output is identical to `items.iter().map(f).collect()` for
    /// any `jobs` value, provided `f` is a pure function of its input.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        POINTS_RUN.fetch_add(items.len() as u64, Ordering::Relaxed);
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().map(f).collect();
        }
        let next = AtomicUsize::new(0);
        // One slot per item, filled exactly once; a Mutex keeps the slot
        // writes race-free without unsafe. Contention is negligible: it is
        // taken once per completed simulation, not per event.
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..items.len()).map(|_| None).collect());
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    let mut slots = slots.lock().expect("sweep result lock poisoned");
                    for (i, r) in local {
                        debug_assert!(slots[i].is_none(), "sweep slot {i} filled twice");
                        slots[i] = Some(r);
                    }
                });
            }
        });
        slots
            .into_inner()
            .expect("sweep result lock poisoned")
            .into_iter()
            .map(|r| r.expect("sweep left a slot unfilled"))
            .collect()
    }

    /// Evaluate a batch of microbenchmark points (see [`RunSpec`]),
    /// returning one [`RunOut`] per spec, in input order.
    pub fn run_points(&self, specs: &[RunSpec]) -> Vec<RunOut> {
        self.map(specs, RunSpec::run)
    }
}

/// One microbenchmark configuration point: which runner to invoke and with
/// what config. The figure generators build flat lists of these and hand
/// them to [`Sweep::run_points`].
#[derive(Debug, Clone)]
pub enum RunSpec {
    /// CPU-utilization benchmark ([`run_cpu_util`]).
    Cpu(CpuUtilConfig),
    /// Broadcast variant of the CPU benchmark ([`run_bcast_util`]).
    Bcast(CpuUtilConfig),
    /// Latency benchmark ([`run_latency`]).
    Latency(LatencyConfig),
    /// Application benchmark ([`run_app_bench`]).
    App(AppBenchConfig),
}

impl RunSpec {
    /// Execute the point.
    pub fn run(&self) -> RunOut {
        match self {
            RunSpec::Cpu(cfg) => RunOut::Cpu(run_cpu_util(cfg)),
            RunSpec::Bcast(cfg) => RunOut::Cpu(run_bcast_util(cfg)),
            RunSpec::Latency(cfg) => RunOut::Latency(run_latency(cfg)),
            RunSpec::App(cfg) => RunOut::App(run_app_bench(cfg)),
        }
    }
}

/// The result of one [`RunSpec`] point.
#[derive(Debug, Clone)]
pub enum RunOut {
    /// From [`run_cpu_util`] or [`run_bcast_util`].
    Cpu(CpuUtilResult),
    /// From [`run_latency`].
    Latency(LatencyResult),
    /// From [`run_app_bench`].
    App(AppBenchResult),
}

impl RunOut {
    /// The CPU-utilization result; panics if this point was not a
    /// CPU/broadcast run.
    pub fn cpu(&self) -> &CpuUtilResult {
        match self {
            RunOut::Cpu(r) => r,
            other => panic!("expected Cpu result, got {other:?}"),
        }
    }

    /// The latency result; panics if this point was not a latency run.
    pub fn latency(&self) -> &LatencyResult {
        match self {
            RunOut::Latency(r) => r,
            other => panic!("expected Latency result, got {other:?}"),
        }
    }

    /// The application-benchmark result; panics if this point was not an
    /// app run.
    pub fn app(&self) -> &AppBenchResult {
        match self {
            RunOut::App(r) => r,
            other => panic!("expected App result, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let seq = Sweep::with_jobs(1).map(&items, |&x| x * x);
        for jobs in [2, 3, 8] {
            let par = Sweep::with_jobs(jobs).map(&items, |&x| x * x);
            assert_eq!(par, seq, "jobs={jobs} reordered results");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(Sweep::with_jobs(4).map(&empty, |&x| x).is_empty());
        assert_eq!(Sweep::with_jobs(4).map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn jobs_floor_is_one() {
        assert_eq!(Sweep::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn parse_jobs_accepts_positive_and_rejects_junk() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs(" 16 "), Ok(16));
        for bad in ["0", "", "four", "-2", "2.5"] {
            let err = parse_jobs(bad).unwrap_err();
            assert!(err.contains("ABR_JOBS"), "{bad}: {err}");
        }
    }

    #[test]
    fn points_counter_advances() {
        let before = points_run();
        Sweep::with_jobs(1).map(&[1u8, 2, 3], |&x| x);
        assert!(points_run() >= before + 3);
    }
}
