//! Cluster specifications.
//!
//! The paper's testbed (§VI): 16 quad-SMP 700-MHz nodes (66-MHz/64-bit PCI)
//! and 16 dual-SMP 1-GHz nodes (33-MHz/32-bit PCI) on a 32-port
//! Myrinet-2000 switch; four of the 1-GHz nodes carry LANai 9.2 cards, the
//! rest LANai 9.1. The machine list *interlaces* the two groups so every
//! prefix of the list is a balanced mix — we reproduce that so "first N
//! nodes" sweeps behave like the paper's.

use abr_fabric::FabricSpec;
use abr_gm::cost::CostModel;
use abr_gm::nic::NodeHw;
use abr_mpr::topology::TopologyKind;

/// A cluster: per-node hardware plus the shared cost model.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Hardware per rank (index = rank).
    pub nodes: Vec<NodeHw>,
    /// The machine cost model.
    pub cost: CostModel,
    /// Eager/rendezvous threshold in payload bytes.
    pub eager_limit: usize,
    /// Tree family for reduction collectives. Constructors read the
    /// process-wide `ABR_TOPO` knob (binomial when unset); override per
    /// spec with [`ClusterSpec::with_topology`].
    pub topology: TopologyKind,
    /// Interconnect model. Constructors read the process-wide
    /// `ABR_FABRIC` / `ABR_OVERSUB` knobs (ideal crossbar when unset);
    /// override per spec with [`ClusterSpec::with_fabric`].
    pub fabric: FabricSpec,
    /// Pipeline window for segmented reductions. Constructors read the
    /// process-wide `ABR_SEGMENTS` knob (`1` when unset, which disables
    /// segmentation and keeps every figure byte-identical); override per
    /// spec with [`ClusterSpec::with_segments`].
    pub segments: usize,
}

/// Read the process-wide `ABR_SEGMENTS` pipeline window (>= 1); `1`
/// (segmentation off) when unset, fail-fast on an invalid value.
pub fn segments_from_env() -> usize {
    abr_trace::parse_env("ABR_SEGMENTS", |raw| {
        let n: usize = raw
            .trim()
            .parse()
            .map_err(|_| format!("ABR_SEGMENTS: expected a positive integer, got {raw:?}"))?;
        if n == 0 {
            return Err("ABR_SEGMENTS: window must be >= 1".to_string());
        }
        Ok(n)
    })
    .unwrap_or(1)
}

impl ClusterSpec {
    /// The paper's heterogeneous 32-node cluster with the interlaced host
    /// list: even positions are 700-MHz/wide-PCI nodes, odd positions are
    /// 1-GHz/narrow-PCI nodes, and the last four 1-GHz slots carry LANai 9.2
    /// cards.
    pub fn heterogeneous_32() -> Self {
        Self::heterogeneous(32)
    }

    /// The interlaced heterogeneous cluster truncated to `n` ranks.
    pub fn heterogeneous(n: u32) -> Self {
        let nodes = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    NodeHw::p3_700()
                } else if i >= 24 {
                    // Four of the sixteen 1-GHz nodes have LANai 9.2; park
                    // them at the tail odd slots (25, 27, 29, 31).
                    NodeHw::p3_1000_l92()
                } else {
                    NodeHw::p3_1000()
                }
            })
            .collect();
        ClusterSpec {
            nodes,
            cost: CostModel::default(),
            eager_limit: 16 * 1024,
            topology: TopologyKind::from_env_or_default(),
            fabric: FabricSpec::from_env_or_flat(),
            segments: segments_from_env(),
        }
    }

    /// A homogeneous cluster of `n` 700-MHz nodes (the paper's Fig. 9b).
    pub fn homogeneous_700(n: u32) -> Self {
        ClusterSpec {
            nodes: (0..n).map(|_| NodeHw::p3_700()).collect(),
            cost: CostModel::default(),
            eager_limit: 16 * 1024,
            topology: TopologyKind::from_env_or_default(),
            fabric: FabricSpec::from_env_or_flat(),
            segments: segments_from_env(),
        }
    }

    /// A homogeneous cluster of `n` 1-GHz nodes.
    pub fn homogeneous_1000(n: u32) -> Self {
        ClusterSpec {
            nodes: (0..n).map(|_| NodeHw::p3_1000()).collect(),
            cost: CostModel::default(),
            eager_limit: 16 * 1024,
            topology: TopologyKind::from_env_or_default(),
            fabric: FabricSpec::from_env_or_flat(),
            segments: segments_from_env(),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the (useless) empty cluster.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Replace the cost model (sensitivity ablations).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the reduction topology (the skew-vs-topology figure).
    pub fn with_topology(mut self, topology: TopologyKind) -> Self {
        self.topology = topology;
        self
    }

    /// Replace the interconnect model (the fabric-contention figure).
    pub fn with_fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabric = fabric;
        self
    }

    /// Replace the segmentation pipeline window (the bandwidth figure).
    ///
    /// # Panics
    /// Panics if `window` is zero (a pipeline needs at least one slot).
    pub fn with_segments(mut self, window: usize) -> Self {
        assert!(window >= 1, "segment window must be >= 1");
        self.segments = window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_gm::nic::{LanaiClass, PciClass};

    #[test]
    fn heterogeneous_32_matches_testbed() {
        let c = ClusterSpec::heterogeneous_32();
        assert_eq!(c.len(), 32);
        let slow = c.nodes.iter().filter(|n| n.cpu_scale > 1.0).count();
        assert_eq!(slow, 16, "sixteen 700-MHz nodes");
        let l92 = c
            .nodes
            .iter()
            .filter(|n| n.lanai == LanaiClass::L92At200)
            .count();
        assert_eq!(l92, 4, "four LANai 9.2 cards");
        // All LANai 9.2 cards sit in 1-GHz (narrow-PCI) nodes.
        assert!(c
            .nodes
            .iter()
            .filter(|n| n.lanai == LanaiClass::L92At200)
            .all(|n| n.pci == PciClass::Mhz33Bit32));
    }

    #[test]
    fn every_prefix_is_balanced() {
        let c = ClusterSpec::heterogeneous_32();
        for n in [2usize, 4, 8, 16, 32] {
            let slow = c.nodes[..n].iter().filter(|h| h.cpu_scale > 1.0).count();
            assert_eq!(slow, n / 2, "prefix {n} unbalanced");
        }
    }

    #[test]
    fn homogeneous_clusters_are_uniform() {
        let c = ClusterSpec::homogeneous_700(16);
        assert!(c.nodes.iter().all(|n| n.cpu_scale == c.nodes[0].cpu_scale));
        let c = ClusterSpec::homogeneous_1000(8);
        assert!(c.nodes.iter().all(|n| n.cpu_scale == 1.0));
    }

    #[test]
    fn truncated_heterogeneous() {
        let c = ClusterSpec::heterogeneous(8);
        assert_eq!(c.len(), 8);
        assert_eq!(c.nodes.iter().filter(|n| n.cpu_scale > 1.0).count(), 4);
    }
}
