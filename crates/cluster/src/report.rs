//! Plain-text table rendering for the figure harnesses.

use std::fmt::Write as _;

/// A simple fixed-width table with a title, printed in the style the bench
/// targets use to regenerate the paper's figures.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio ("factor of improvement") with two decimals.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["skew", "nab", "ab", "factor"]);
        t.row(vec![
            "0".into(),
            "12.10".into(),
            "9.00".into(),
            "1.34".into(),
        ]);
        t.row(vec![
            "1000".into(),
            "101.55".into(),
            "20.01".into(),
            "5.07".into(),
        ]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("skew"));
        assert!(s.contains("5.07"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1.0, 0.0), "inf");
        assert_eq!(ratio(5.0, 2.0), "2.50");
        assert_eq!(f2(1.005), "1.00"); // banker's-ish rounding is fine
    }
}
