//! Plain-text table rendering for the figure harnesses.

use std::fmt::Write as _;

/// A simple fixed-width table with a title, printed in the style the bench
/// targets use to regenerate the paper's figures.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut line = String::new();
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{c:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The `q`-th quantile of **sorted** `samples`, by the nearest-rank
/// convention every harness in this repo uses: index
/// `round((len - 1) * q)`. Returns 0 for an empty slice. This is the one
/// shared percentile implementation — the microbenchmark aggregates and the
/// tenant latency metrics both call it, so their tails are computed
/// identically.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile() requires sorted samples"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// The latency tail summary the tenant figure reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl Percentiles {
    /// Compute p50/p99/p999 from unsorted samples (sorts in place).
    pub fn from_unsorted(samples: &mut [f64]) -> Percentiles {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Percentiles {
            p50: percentile(samples, 0.5),
            p99: percentile(samples, 0.99),
            p999: percentile(samples, 0.999),
        }
    }
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio ("factor of improvement") with two decimals.
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("Demo", &["skew", "nab", "ab", "factor"]);
        t.row(vec![
            "0".into(),
            "12.10".into(),
            "9.00".into(),
            "1.34".into(),
        ]);
        t.row(vec![
            "1000".into(),
            "101.55".into(),
            "20.01".into(),
            "5.07".into(),
        ]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("skew"));
        assert!(s.contains("5.07"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1.0, 0.0), "inf");
        assert_eq!(ratio(5.0, 2.0), "2.50");
        assert_eq!(f2(1.005), "1.00"); // banker's-ish rounding is fine
    }

    #[test]
    fn percentile_uses_nearest_rank_rounding() {
        let s: Vec<f64> = (0..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&s, 0.0), 0.0);
        assert_eq!(percentile(&s, 0.5), 50.0);
        assert_eq!(percentile(&s, 0.95), 95.0);
        assert_eq!(percentile(&s, 1.0), 100.0);
        // round((4-1)*0.5) = 2 — matches the historical microbench closure.
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_single_sample_is_every_quantile() {
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(percentile(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn percentiles_sort_then_summarize() {
        let mut s: Vec<f64> = (0..1000).rev().map(|x| x as f64).collect();
        let p = Percentiles::from_unsorted(&mut s);
        assert_eq!(p.p50, 500.0); // round(999*0.5) = 500
        assert_eq!(p.p99, 989.0); // round(999*0.99) = 989
        assert_eq!(p.p999, 998.0); // round(999*0.999) = 998
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "sorted in place");
    }
}
