//! Resumable per-node benchmark programs.
//!
//! A [`Program`] yields one [`Step`] at a time; the driver executes it
//! (advancing virtual time, blocking on requests, charging CPU) and calls
//! back for the next. Zero-duration bookkeeping steps (timer marks,
//! measurement windows) execute immediately, so a program reads like
//! straight-line benchmark code.

use abr_des::{CpuWindow, SimDuration, SimTime};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{Datatype, Rank};
use bytes::Bytes;

/// One step of a node program.
#[derive(Debug, Clone)]
pub enum Step {
    /// Busy-loop for a duration (calibrated in wall microseconds, as the
    /// paper converts delays to busy-loop iterations per node).
    Busy(SimDuration),
    /// Call the (blocking) reduction.
    Reduce {
        /// Root rank.
        root: Rank,
        /// Operator.
        op: ReduceOp,
        /// Element type.
        dtype: Datatype,
        /// This rank's contribution.
        data: Vec<u8>,
    },
    /// Post a split-phase reduction (extension API); completes like Reduce
    /// but the driver does not block on it — completion is signal-driven.
    /// The result (root only) is delivered to the next step's context.
    ReduceSplit {
        /// Root rank.
        root: Rank,
        /// Operator.
        op: ReduceOp,
        /// Element type.
        dtype: Datatype,
        /// This rank's contribution.
        data: Vec<u8>,
    },
    /// Wait for the most recent split-phase reduction to complete.
    WaitSplit,
    /// Post a split-phase application-bypass broadcast (ref. \[8\]); waited
    /// on with [`Step::WaitSplit`] like the split reduce.
    BcastSplit {
        /// Root rank.
        root: Rank,
        /// Root's payload (`None` elsewhere).
        data: Option<Bytes>,
        /// Payload length in bytes.
        len: usize,
    },
    /// Blocking allreduce.
    Allreduce {
        /// Operator.
        op: ReduceOp,
        /// Element type.
        dtype: Datatype,
        /// This rank's contribution.
        data: Vec<u8>,
    },
    /// Blocking dual-root doubly-pipelined allreduce (Träff): the vector is
    /// halved and reduced along a chain and its reverse concurrently, so
    /// both directions of every link carry traffic. Falls back to the plain
    /// allreduce algorithm when the communicator or vector is too small.
    AllreduceDual {
        /// Operator.
        op: ReduceOp,
        /// Element type.
        dtype: Datatype,
        /// This rank's contribution.
        data: Vec<u8>,
    },
    /// Post a split-phase dual-root allreduce; waited on with
    /// [`Step::WaitSplit`] like the split reduce. The reduced vector is
    /// delivered to every rank's next-step context.
    AllreduceDualSplit {
        /// Operator.
        op: ReduceOp,
        /// Element type.
        dtype: Datatype,
        /// This rank's contribution.
        data: Vec<u8>,
    },
    /// Blocking broadcast.
    Bcast {
        /// Root rank.
        root: Rank,
        /// Root's payload (`None` elsewhere).
        data: Option<Bytes>,
        /// Payload length in bytes.
        len: usize,
    },
    /// Blocking barrier.
    Barrier,
    /// Blocking send.
    Send {
        /// Destination rank.
        dst: Rank,
        /// Tag.
        tag: i32,
        /// Payload.
        data: Bytes,
    },
    /// Blocking receive; the payload lands in [`StepCtx::last_data`].
    Recv {
        /// Source rank.
        src: Rank,
        /// Tag.
        tag: i32,
        /// Buffer capacity.
        cap: usize,
    },
    /// Open the CPU-measurement window.
    WindowStart,
    /// Close the window; the charged CPU lands in [`StepCtx::last_window`].
    WindowStop,
    /// The program is finished.
    Done,
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Obs {
    /// Observation label (e.g. `"cpu_util_us"`).
    pub key: &'static str,
    /// Value.
    pub value: f64,
}

/// Context handed to [`Program::next`] after each completed step.
#[derive(Debug)]
pub struct StepCtx {
    /// Current virtual time at this node's CPU cursor.
    pub now: SimTime,
    /// Per-category CPU charged during the most recently closed window.
    pub last_window: Option<CpuWindow>,
    /// Payload of the most recently completed receive (or root
    /// reduce/bcast/allreduce result).
    pub last_data: Option<Bytes>,
    /// Observations recorded by this node.
    pub obs: Vec<Obs>,
}

impl StepCtx {
    /// Fresh context.
    pub fn new() -> Self {
        StepCtx {
            now: SimTime::ZERO,
            last_window: None,
            last_data: None,
            obs: Vec::new(),
        }
    }

    /// Record an observation.
    pub fn record(&mut self, key: &'static str, value: f64) {
        self.obs.push(Obs { key, value });
    }
}

impl Default for StepCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// A resumable node program.
pub trait Program: Send {
    /// Produce the next step. Called once at start and after every
    /// completed step.
    fn next(&mut self, ctx: &mut StepCtx) -> Step;
}

/// Boxed programs still run: this is the type-erased escape hatch for
/// heterogeneous program lists. The driver is generic over `P: Program`
/// precisely so hot loops can run *concrete* program types with no vtable
/// hop; use a box only when ranks genuinely need different program types.
impl Program for Box<dyn Program> {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        (**self).next(ctx)
    }
}

/// A program from a boxed closure — convenient for tests.
pub struct FnProgram<F: FnMut(&mut StepCtx) -> Step + Send>(pub F);

impl<F: FnMut(&mut StepCtx) -> Step + Send> Program for FnProgram<F> {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        (self.0)(ctx)
    }
}

/// A program that runs a fixed list of steps then finishes.
pub struct ScriptProgram {
    steps: std::vec::IntoIter<Step>,
}

impl ScriptProgram {
    /// Wrap a step list.
    pub fn new(steps: Vec<Step>) -> Self {
        ScriptProgram {
            steps: steps.into_iter(),
        }
    }
}

impl Program for ScriptProgram {
    fn next(&mut self, _ctx: &mut StepCtx) -> Step {
        self.steps.next().unwrap_or(Step::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_program_replays_then_finishes() {
        let mut p = ScriptProgram::new(vec![Step::Barrier, Step::WindowStart]);
        let mut ctx = StepCtx::new();
        assert!(matches!(p.next(&mut ctx), Step::Barrier));
        assert!(matches!(p.next(&mut ctx), Step::WindowStart));
        assert!(matches!(p.next(&mut ctx), Step::Done));
        assert!(matches!(p.next(&mut ctx), Step::Done));
    }

    #[test]
    fn ctx_records_observations() {
        let mut ctx = StepCtx::new();
        ctx.record("x", 1.5);
        ctx.record("y", -2.0);
        assert_eq!(ctx.obs.len(), 2);
        assert_eq!(ctx.obs[0].key, "x");
        assert_eq!(ctx.obs[1].value, -2.0);
    }

    #[test]
    fn fn_program_uses_closure_state() {
        let mut count = 0;
        let mut p = FnProgram(move |_ctx: &mut StepCtx| {
            count += 1;
            if count <= 2 {
                Step::Barrier
            } else {
                Step::Done
            }
        });
        let mut ctx = StepCtx::new();
        assert!(matches!(p.next(&mut ctx), Step::Barrier));
        assert!(matches!(p.next(&mut ctx), Step::Barrier));
        assert!(matches!(p.next(&mut ctx), Step::Done));
    }
}
