//! `abr_cluster` — the cluster harness: node configurations, the
//! discrete-event driver, the live threaded driver, and the paper's two
//! microbenchmarks.
//!
//! * [`node`] — node and cluster specifications, including the paper's
//!   heterogeneous 32-node testbed with its interlaced host list (§VI),
//! * [`program`] — resumable per-node benchmark programs (busy loops,
//!   collectives, timing marks),
//! * [`driver`] — the discrete-event driver: virtual time, per-node CPU
//!   accounting, blocking-call emulation by event-driven polling, signal
//!   delivery with preemption, and the GM network model,
//! * [`microbench`] — the CPU-utilization and latency microbenchmarks of
//!   §VI, parameterized exactly like the paper's figures,
//! * [`live`] — a real threaded runtime (one OS thread per rank plus one
//!   signal-dispatcher thread per rank) running the same engines,
//! * [`tenant`] — the multi-tenant collective service: seeded job mixes
//!   co-scheduled over engine sets, with shared-node contention and the
//!   saturation-sweep metrics (throughput, latency tails, Jain fairness),
//! * [`report`] — plain-text table rendering for the figure harnesses.

//! # Example
//!
//! Run a bypassed reduction across eight real threads:
//!
//! ```
//! use abr_cluster::{live::run_live, node::ClusterSpec};
//! use abr_core::AbConfig;
//! use abr_mpr::op::ReduceOp;
//! use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
//!
//! let spec = ClusterSpec::homogeneous_1000(8);
//! let results = run_live(&spec, AbConfig::default(), |ctx| {
//!     let mine = f64s_to_bytes(&[ctx.rank() as f64]);
//!     ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &mine).unwrap()
//! });
//! let root = results[0].as_ref().unwrap();
//! assert_eq!(bytes_to_f64s(root), vec![28.0]);
//! ```

#![warn(missing_docs)]

pub mod driver;
pub mod live;
pub mod microbench;
pub mod node;
pub mod program;
pub mod report;
pub mod sweep;
pub mod tenant;

pub use abr_faults::{FaultPlan, RelConfig, RelStats};
pub use driver::DesDriver;
pub use microbench::{CpuUtilConfig, CpuUtilResult, LatencyConfig, LatencyResult};
pub use node::ClusterSpec;
pub use program::{Program, Step, StepCtx};
pub use report::{percentile, Percentiles};
pub use tenant::{run_tenant, saturation_config, TenantConfig, TenantResult};
