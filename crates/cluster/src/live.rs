//! The live threaded runtime.
//!
//! One OS thread per rank runs real application code against a
//! [`RankCtx`] handle; one *dispatcher* thread per rank plays the role of
//! the NIC+kernel signal path: it watches the rank's mailbox and, when
//! signals are enabled and a collective packet arrives, grabs the engine
//! lock and runs the asynchronous handler. If the application thread holds
//! the lock (progress already underway), the dispatcher skips — the live
//! analogue of Fig. 4's "signal is simply ignored".
//!
//! The protocol engines are byte-for-byte the same objects the
//! discrete-event driver runs; this runtime exists to demonstrate the
//! system end-to-end with real threads and real (wall-clock) skew, and to
//! cross-check results between the two drivers.

use crate::node::ClusterSpec;
use abr_core::{AbConfig, AbEngine};
use abr_faults::{FaultInjector, FaultPlan, NodeReliability, RelConfig, RelEvent, RelStats};
use abr_gm::live::{LiveFabric, Mailbox};
use abr_gm::packet::{NodeId, Packet, PacketKind};
use abr_mpr::engine::{Action, EngineConfig, MessageEngine};
use abr_mpr::op::ReduceOp;
use abr_mpr::request::Outcome;
use abr_mpr::types::{Datatype, MprError, Rank, TagSel};
use abr_mpr::{Communicator, ReqId};
use abr_trace::{TraceHandle, Tracer};
use bytes::Bytes;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a dispatcher sleeps when it cannot act.
const DISPATCH_IDLE: Duration = Duration::from_micros(200);
/// How long a blocked application thread waits for mail before re-polling.
const BLOCK_POLL: Duration = Duration::from_micros(100);

/// A packet held back by the fault injector's delay verdict.
struct Delayed {
    due: Instant,
    /// Tie-breaker preserving injection order for equal deadlines.
    seq: u64,
    pkt: Packet,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

/// Shared fault-injection state for a live run: the (locked) injector, the
/// delay queue its verdicts feed, and the wall-clock epoch that stands in
/// for the DES's virtual clock.
struct LiveFaults {
    fabric: Arc<LiveFabric>,
    injector: Mutex<FaultInjector>,
    delays: Mutex<BinaryHeap<Reverse<Delayed>>>,
    cv: Condvar,
    epoch: Instant,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
}

impl LiveFaults {
    fn new(fabric: Arc<LiveFabric>, plan: &FaultPlan) -> Self {
        LiveFaults {
            fabric,
            injector: Mutex::new(FaultInjector::new(plan.clone())),
            delays: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
            epoch: Instant::now(),
            next_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Nanoseconds since the run started — the live analogue of virtual
    /// time, fed to the reliability layer's timers.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Put a packet on the wire through the injector: dropped copies vanish,
    /// prompt copies go straight to the fabric, delayed copies park in the
    /// delay queue for the worker thread.
    fn send(&self, pkt: Packet) {
        let v = self
            .injector
            .lock()
            .expect("fault injector lock poisoned")
            .decide(&pkt, None);
        for _ in 0..v.copies {
            if v.extra_delay_ns == 0 {
                self.fabric.send(pkt.clone());
            } else {
                let entry = Delayed {
                    due: Instant::now() + Duration::from_nanos(v.extra_delay_ns),
                    seq: self.next_seq.fetch_add(1, Ordering::SeqCst),
                    pkt: pkt.clone(),
                };
                self.delays
                    .lock()
                    .expect("delay queue lock poisoned")
                    .push(Reverse(entry));
                self.cv.notify_all();
            }
        }
    }

    /// Wake the delay worker for exit.
    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// The delay-queue worker: releases parked packets when they come due.
    fn delay_worker(&self) {
        let mut q = self.delays.lock().expect("delay queue lock poisoned");
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            let mut due = Vec::new();
            while q.peek().is_some_and(|Reverse(d)| d.due <= now) {
                due.push(q.pop().expect("peeked non-empty").0.pkt);
            }
            if !due.is_empty() {
                drop(q);
                for p in due {
                    self.fabric.send(p);
                }
                q = self.delays.lock().expect("delay queue lock poisoned");
                continue;
            }
            let wait = match q.peek() {
                Some(Reverse(d)) => d.due.saturating_duration_since(now),
                None => Duration::from_millis(50),
            };
            let (guard, _) = self
                .cv
                .wait_timeout(q, wait.max(Duration::from_micros(1)))
                .expect("delay queue lock poisoned");
            q = guard;
        }
    }
}

/// What the engine mutex protects: the protocol engine plus (under faults)
/// the rank's reliability state, so mail always flows mailbox → reliability
/// → engine under one lock.
struct RankState {
    eng: AbEngine,
    rel: Option<NodeReliability>,
    /// A collective packet reached the engine but the NIC signal has not
    /// fired yet. The flag survives across drains so a packet that lands
    /// while signals are still disabled (its descriptor not yet posted)
    /// triggers the handler as soon as signals come up, instead of parking
    /// in the engine forever.
    pending_collective: bool,
}

struct RankShared {
    rank: u32,
    engine: Mutex<RankState>,
    mailbox: Arc<Mailbox>,
    fabric: Arc<LiveFabric>,
    signals_enabled: AtomicBool,
    faults: Option<Arc<LiveFaults>>,
}

impl RankShared {
    /// Drain the mailbox into the engine (through the reliability layer
    /// when faults are active, which also fires retransmission timers).
    /// A collective packet reaching the engine raises
    /// `st.pending_collective` — the caller is responsible for firing the
    /// signal via [`Self::fire_signal_if_pending`].
    fn drain_mail(&self, st: &mut RankState) {
        let pkts = self.mailbox.drain();
        match (&mut st.rel, &self.faults) {
            (Some(rel), Some(fl)) => {
                let mut out = Vec::new();
                for pkt in pkts {
                    rel.on_receive(pkt, fl.now_ns(), &mut out);
                }
                rel.on_tick(fl.now_ns(), &mut out);
                for e in out {
                    match e {
                        RelEvent::Deliver(p) => {
                            st.pending_collective |= p.header.kind == PacketKind::Collective;
                            st.eng.deliver(p);
                        }
                        RelEvent::Transmit(p) => fl.send(p),
                        RelEvent::LinkDead { peer } => panic!(
                            "rank {}: link to rank {peer} declared dead (retry budget exhausted)",
                            self.rank
                        ),
                    }
                }
            }
            _ => {
                for pkt in pkts {
                    st.pending_collective |= pkt.header.kind == PacketKind::Collective;
                    st.eng.deliver(pkt);
                }
            }
        }
    }

    /// Run the NIC signal handler if a collective packet is waiting and
    /// signals are enabled. The pending flag deliberately *persists* while
    /// signals are disabled: a packet can land before its descriptor is
    /// posted (a fast child racing its parent's `reduce()` call), and the
    /// handler must then fire as soon as the descriptor enables signals —
    /// nothing else will ever re-raise the flag for that packet.
    fn fire_signal_if_pending(&self, st: &mut RankState) {
        if st.pending_collective && self.signals_enabled.load(Ordering::SeqCst) {
            st.pending_collective = false;
            st.eng.handle_signal();
        }
    }

    /// Drain the mailbox into the engine and run `f`, then route actions.
    /// The caller must hold no engine lock.
    fn with_engine<T>(&self, f: impl FnOnce(&mut AbEngine) -> T) -> T {
        let mut st = self.engine.lock().expect("engine lock poisoned");
        self.drain_mail(&mut st);
        self.fire_signal_if_pending(&mut st);
        let out = f(&mut st.eng);
        self.route_actions(&mut st);
        // `f` may have just enabled signals (posting a descriptor for a
        // collective whose packets already arrived): fire now, then route
        // whatever the handler produced.
        self.fire_signal_if_pending(&mut st);
        self.route_actions(&mut st);
        out
    }

    fn route_actions(&self, st: &mut RankState) {
        for a in st.eng.drain_actions() {
            match a {
                Action::Send(pkt) => match (&mut st.rel, &self.faults) {
                    (Some(rel), Some(fl)) => {
                        let p = rel.on_send(pkt, fl.now_ns());
                        fl.send(p);
                    }
                    _ => self.fabric.send(pkt),
                },
                Action::EnableSignals => self.signals_enabled.store(true, Ordering::SeqCst),
                Action::DisableSignals => self.signals_enabled.store(false, Ordering::SeqCst),
            }
        }
    }
}

/// Statistics snapshot taken at rank shutdown.
#[derive(Debug, Clone)]
pub struct LiveRankStats {
    /// Application-bypass counters.
    pub ab: abr_core::AbStats,
    /// Engine counters.
    pub counters: Vec<(&'static str, u64)>,
}

/// The per-rank handle application closures program against.
pub struct RankCtx {
    rank: Rank,
    size: u32,
    /// The communicator every blocking verb runs over: the world
    /// communicator in a solo run, the job communicator under
    /// [`run_live_jobs`] (ranks are job-local either way).
    comm: Communicator,
    shared: Arc<RankShared>,
}

impl RankCtx {
    /// This rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The communicator this rank's collectives run over (the world
    /// communicator, or the job communicator under [`run_live_jobs`]).
    pub fn world(&self) -> Communicator {
        self.comm
    }

    fn block_on(&self, req: ReqId) -> Option<Outcome> {
        // Honour the bounded-block hint (the §IV-E exit delay): poll inside
        // the "call" until the budget expires, then split-phase exit.
        let mut deadline: Option<Instant> = None;
        loop {
            let (done, hint) = self.shared.with_engine(|e| {
                e.progress();
                (e.test(req), e.bounded_block_hint(req))
            });
            if done {
                return self.shared.with_engine(|e| e.take_outcome(req));
            }
            if let Some(budget) = hint {
                let dl = *deadline.get_or_insert_with(|| {
                    Instant::now() + Duration::from_nanos(budget.as_nanos())
                });
                if Instant::now() >= dl {
                    return self.shared.with_engine(|e| {
                        e.split_phase_exit(req);
                        debug_assert!(e.test(req));
                        e.take_outcome(req)
                    });
                }
            }
            self.shared.mailbox.wait_nonempty(Some(BLOCK_POLL));
            if self.shared.mailbox.is_closed() {
                // A closed fabric under a still-blocked call can only mean
                // abnormal shutdown (a peer rank panicked and its guard tore
                // the fabric down): this request can never complete, so fail
                // loudly instead of hanging the scope.
                let done = self.shared.with_engine(|e| {
                    e.progress();
                    e.test(req)
                });
                if !done {
                    panic!(
                        "rank {}: fabric closed while blocked on a request — a peer rank failed",
                        self.rank
                    );
                }
            }
        }
    }

    /// Blocking reduction; the root gets `Some(result_bytes)`.
    pub fn reduce(
        &self,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> Result<Option<Bytes>, MprError> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.ireduce(&comm, root, op, dtype, data));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(Some(d)),
            Some(Outcome::Done) | None => Ok(None),
            Some(Outcome::Failed(e)) => Err(e),
        }
    }

    /// Split-phase reduction (extension): returns a handle immediately; the
    /// reduction progresses via signals while this thread computes.
    pub fn reduce_split(
        &self,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> SplitReduce<'_> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| AbEngine::ireduce_split(e, &comm, root, op, dtype, data));
        SplitReduce { ctx: self, req }
    }

    /// Split-phase allreduce (§II extension): a bypassed reduce chained
    /// into a bypassed broadcast; every rank's handle completes with the
    /// reduced data, signal-driven.
    pub fn allreduce_split(&self, op: ReduceOp, dtype: Datatype, data: &[u8]) -> SplitReduce<'_> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.iallreduce_split(&comm, op, dtype, data));
        SplitReduce { ctx: self, req }
    }

    /// Blocking allreduce; every rank gets the result.
    pub fn allreduce(&self, op: ReduceOp, dtype: Datatype, data: &[u8]) -> Result<Bytes, MprError> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.iallreduce(&comm, op, dtype, data));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(d),
            Some(Outcome::Failed(e)) => Err(e),
            other => panic!("allreduce completed without data: {other:?}"),
        }
    }

    /// Blocking dual-root doubly-pipelined allreduce (Träff): both halves
    /// of the vector travel opposite-direction chains concurrently. Every
    /// rank gets the result; small vectors fall back to the plain
    /// allreduce.
    pub fn allreduce_dual(
        &self,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> Result<Bytes, MprError> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.iallreduce_dual(&comm, op, dtype, data));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(d),
            Some(Outcome::Failed(e)) => Err(e),
            other => panic!("allreduce_dual completed without data: {other:?}"),
        }
    }

    /// Split-phase dual-root allreduce; waited on like the other split
    /// handles, completes with the reduced vector on every rank.
    pub fn allreduce_dual_split(
        &self,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> SplitReduce<'_> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.iallreduce_dual_split(&comm, op, dtype, data));
        SplitReduce { ctx: self, req }
    }

    /// Split-phase application-bypass broadcast (ref. \[8\]): returns a
    /// handle immediately; interior forwarding happens in the dispatcher's
    /// signal path while this thread computes.
    pub fn bcast_split(&self, root: Rank, data: Option<Bytes>, len: usize) -> SplitReduce<'_> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.ibcast_split(&comm, root, data, len));
        SplitReduce { ctx: self, req }
    }

    /// Blocking broadcast from `root`.
    pub fn bcast(&self, root: Rank, data: Option<Bytes>, len: usize) -> Result<Bytes, MprError> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| e.ibcast(&comm, root, data, len));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(d),
            Some(Outcome::Failed(e)) => Err(e),
            other => panic!("bcast completed without data: {other:?}"),
        }
    }

    /// Blocking gather to `root`; the root gets the rank-ordered
    /// concatenation.
    pub fn gather(&self, root: Rank, data: &[u8]) -> Result<Option<Bytes>, MprError> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| abr_mpr::engine::Engine::igather(e.inner_mut(), &comm, root, data));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(Some(d)),
            Some(Outcome::Done) | None => Ok(None),
            Some(Outcome::Failed(e)) => Err(e),
        }
    }

    /// Blocking scatter from `root` (`data` is `size * block` bytes there);
    /// every rank receives its own block.
    pub fn scatter(
        &self,
        root: Rank,
        data: Option<&[u8]>,
        block: usize,
    ) -> Result<Bytes, MprError> {
        let comm = self.world();
        let req = self.shared.with_engine(|e| {
            abr_mpr::engine::Engine::iscatter(e.inner_mut(), &comm, root, data, block)
        });
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(d),
            Some(Outcome::Failed(e)) => Err(e),
            other => panic!("scatter completed without data: {other:?}"),
        }
    }

    /// Blocking allgather; every rank gets every block in rank order.
    pub fn allgather(&self, data: &[u8]) -> Result<Bytes, MprError> {
        let comm = self.world();
        let req = self
            .shared
            .with_engine(|e| abr_mpr::engine::Engine::iallgather(e.inner_mut(), &comm, data));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(d),
            Some(Outcome::Failed(e)) => Err(e),
            other => panic!("allgather completed without data: {other:?}"),
        }
    }

    /// Blocking barrier.
    pub fn barrier(&self) {
        let comm = self.world();
        let req = self.shared.with_engine(|e| e.ibarrier(&comm));
        if let Some(Outcome::Failed(e)) = self.block_on(req) {
            panic!("barrier failed: {e}")
        }
    }

    /// Blocking send.
    pub fn send(&self, dst: Rank, tag: i32, data: Bytes) -> Result<(), MprError> {
        let comm = self.world();
        let req = self.shared.with_engine(|e| e.isend(&comm, dst, tag, data));
        match self.block_on(req) {
            Some(Outcome::Failed(e)) => Err(e),
            _ => Ok(()),
        }
    }

    /// Blocking receive.
    pub fn recv(&self, src: Option<Rank>, tag: TagSel, cap: usize) -> Result<Bytes, MprError> {
        let comm = self.world();
        let req = self.shared.with_engine(|e| e.irecv(&comm, src, tag, cap));
        match self.block_on(req) {
            Some(Outcome::Data(d)) => Ok(d),
            Some(Outcome::Failed(e)) => Err(e),
            other => panic!("recv completed without data: {other:?}"),
        }
    }

    /// Snapshot the rank's statistics.
    pub fn stats(&self) -> LiveRankStats {
        self.shared.with_engine(|e| LiveRankStats {
            ab: *e.ab_stats(),
            counters: e.counters(),
        })
    }

    /// Whether NIC signals are currently enabled for this rank.
    pub fn signals_enabled(&self) -> bool {
        self.shared.signals_enabled.load(Ordering::SeqCst)
    }
}

/// Handle to an in-flight split-phase reduction.
pub struct SplitReduce<'a> {
    ctx: &'a RankCtx,
    req: ReqId,
}

impl SplitReduce<'_> {
    /// Non-blocking completion test — no engine progress is made, so a
    /// `true` here under signal dispatch proves the bypass worked.
    pub fn test(&self) -> bool {
        self.ctx
            .shared
            .engine
            .lock()
            .expect("engine lock poisoned")
            .eng
            .test(self.req)
    }

    /// Wait for completion; the root gets `Some(result)`.
    pub fn wait(self) -> Result<Option<Bytes>, MprError> {
        match self.ctx.block_on(self.req) {
            Some(Outcome::Data(d)) => Ok(Some(d)),
            Some(Outcome::Done) | None => Ok(None),
            Some(Outcome::Failed(e)) => Err(e),
        }
    }
}

fn dispatcher_loop(shared: Arc<RankShared>) {
    let faulty = shared.faults.is_some();
    loop {
        // The dispatcher serves until the whole run is over (fabric
        // closed): a rank's application thread may return while its own
        // reduction is still in flight — that is the entire point of
        // application bypass — and only this thread can finish it then.
        if shared.mailbox.is_closed() {
            if shared.signals_enabled.load(Ordering::SeqCst) && !shared.mailbox.is_empty() {
                // try_lock treats a poisoned lock like a held one: the
                // owning rank died mid-crank, there is nothing to save.
                if let Ok(mut st) = shared.engine.try_lock() {
                    shared.drain_mail(&mut st);
                    st.eng.handle_signal();
                    shared.route_actions(&mut st);
                }
            }
            return;
        }
        let got_mail = shared.mailbox.wait_nonempty(Some(DISPATCH_IDLE));
        if faulty {
            // Under faults the dispatcher doubles as the timer thread: on
            // every wake (mail or timeout) it runs arriving packets through
            // the reliability layer and fires due retransmissions, so a
            // lost packet recovers even while every app thread is blocked.
            if let Ok(mut st) = shared.engine.try_lock() {
                shared.drain_mail(&mut st);
                shared.fire_signal_if_pending(&mut st);
                shared.route_actions(&mut st);
            } else if got_mail {
                std::thread::sleep(Duration::from_micros(20));
            }
            continue;
        }
        if !got_mail {
            continue;
        }
        if !shared.signals_enabled.load(Ordering::SeqCst) {
            // Signals disabled at the NIC: packets wait for the application
            // to trigger progress. Idle briefly to avoid spinning.
            std::thread::sleep(DISPATCH_IDLE);
            continue;
        }
        // Only collective packets generate signals.
        let has_collective = {
            // Peek cheaply: drain would steal packets from the app thread's
            // own drain, which is fine — both paths deliver to the engine
            // under the lock.
            !shared.mailbox.is_empty()
        };
        if !has_collective {
            continue;
        }
        // Signal fires: try to enter the progress engine. A held lock means
        // progress is already underway — the signal is simply ignored.
        if let Ok(mut st) = shared.engine.try_lock() {
            shared.drain_mail(&mut st);
            shared.fire_signal_if_pending(&mut st);
            shared.route_actions(&mut st);
        } else {
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

/// Panic-safe teardown for one application thread. On normal return the
/// *last* rank out closes the fabric; on panic the dying rank closes it
/// immediately, so blocked peers and dispatcher threads wake and exit
/// instead of hanging `thread::scope` forever.
struct ShutdownGuard<'a> {
    fabric: &'a LiveFabric,
    faults: Option<&'a Arc<LiveFaults>>,
    finished: &'a AtomicUsize,
    n: usize,
}

impl ShutdownGuard<'_> {
    fn close(&self) {
        self.fabric.close_all();
        if let Some(f) = self.faults {
            f.stop();
        }
    }
}

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        // Short-circuit keeps a panicking rank from counting itself finished.
        if std::thread::panicking() || self.finished.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.close();
        }
    }
}

/// Results of a live run under a fault plan.
#[derive(Debug)]
pub struct LiveOutcome<R> {
    /// Each rank's closure result, in rank order.
    pub results: Vec<R>,
    /// Aggregate reliability-layer counters across all ranks (all zero
    /// when the plan was [`FaultPlan::none`]).
    pub rel: RelStats,
}

/// Run `f` on `n` ranks over the live runtime; returns each rank's result
/// in rank order. `ab` selects bypass or baseline engines (the cost model
/// still *accounts* charges, but wall-clock time is what the threads
/// actually experience).
pub fn run_live<R: Send>(
    spec: &ClusterSpec,
    ab: AbConfig,
    f: impl Fn(&RankCtx) -> R + Send + Sync,
) -> Vec<R> {
    run_live_faults(spec, ab, &FaultPlan::none(), RelConfig::live_default(), f).results
}

/// [`run_live`] under a seeded [`FaultPlan`]: every engine-originated
/// packet passes through the fault injector (drop/duplicate/delay/stall)
/// and the per-rank reliability layer recovers whatever the plan breaks.
/// Window-scoped rules never fire here (no virtual clock); window-free
/// plans replay the DES schedule exactly.
pub fn run_live_faults<R: Send>(
    spec: &ClusterSpec,
    ab: AbConfig,
    plan: &FaultPlan,
    rel_cfg: RelConfig,
    f: impl Fn(&RankCtx) -> R + Send + Sync,
) -> LiveOutcome<R> {
    run_live_traced(spec, ab, plan, rel_cfg, None, f)
}

/// [`run_live_faults`] with an optional [`Tracer`] wired through the stack:
/// each rank's engine and reliability layer gets a per-rank handle and the
/// fault injector reports its verdicts. Live events carry wall-clock stamps
/// (build the recorder with [`abr_trace::TraceClock::Wall`]); the engines
/// still emit the same ordered send/recv skeleton as the DES driver for the
/// same seed and plan.
pub fn run_live_traced<R: Send>(
    spec: &ClusterSpec,
    ab: AbConfig,
    plan: &FaultPlan,
    rel_cfg: RelConfig,
    tracer: Option<Arc<dyn Tracer>>,
    f: impl Fn(&RankCtx) -> R + Send + Sync,
) -> LiveOutcome<R> {
    let n = spec.len() as u32;
    run_live_world(
        spec,
        ab,
        plan,
        rel_cfg,
        tracer,
        Communicator::world(n),
        n,
        &f,
    )
}

/// Run several jobs concurrently over the live runtime: one engine set and
/// one private [`LiveFabric`] per job (jobs are closed under communication,
/// so no cross-job packets exist to route), with every job's collectives
/// running over its [`Communicator::job`] context. `sizes[j]` is job `j`'s
/// rank count; the closure gets `(job, ctx)` and runs on job-local ranks
/// `0..sizes[j]`. Returns each job's rank-ordered results, in job order.
///
/// This is the live twin of the DES driver's `new_jobs` construction path:
/// the contention co-scheduled jobs exert on each other here is real —
/// every rank is an OS thread and nab ranks burn host CPU busy-polling.
pub fn run_live_jobs<R: Send>(
    spec: &ClusterSpec,
    ab: AbConfig,
    sizes: &[u32],
    f: impl Fn(u32, &RankCtx) -> R + Send + Sync,
) -> Vec<Vec<R>> {
    assert!(!sizes.is_empty(), "run_live_jobs needs at least one job");
    let mut out: Vec<Option<Vec<R>>> = sizes.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (j, slot) in out.iter_mut().enumerate() {
            let size = sizes[j];
            assert!(size >= 1, "job {j} has no ranks");
            let ab = ab.clone();
            let f = &f;
            s.spawn(move || {
                let job = j as u32;
                let jf = move |ctx: &RankCtx| f(job, ctx);
                *slot = Some(
                    run_live_world(
                        spec,
                        ab,
                        &FaultPlan::none(),
                        RelConfig::live_default(),
                        None,
                        Communicator::job(job, size),
                        size,
                        &jf,
                    )
                    .results,
                );
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("job thread completed"))
        .collect()
}

/// The shared body of [`run_live_traced`] and [`run_live_jobs`]: run `n`
/// rank threads whose collectives travel over `world` (the world
/// communicator, or a job communicator for one job of a tenant run).
#[allow(clippy::too_many_arguments)]
fn run_live_world<R: Send, F: Fn(&RankCtx) -> R + Send + Sync>(
    spec: &ClusterSpec,
    ab: AbConfig,
    plan: &FaultPlan,
    rel_cfg: RelConfig,
    tracer: Option<Arc<dyn Tracer>>,
    world: Communicator,
    n: u32,
    f: &F,
) -> LiveOutcome<R> {
    let fabric = Arc::new(LiveFabric::new(n as usize));
    let faults = (!plan.is_none()).then(|| {
        let fl = LiveFaults::new(Arc::clone(&fabric), plan);
        if let Some(t) = &tracer {
            fl.injector
                .lock()
                .expect("fault injector lock poisoned")
                .set_tracer(TraceHandle::new(t.clone(), 0));
        }
        Arc::new(fl)
    });
    let shareds: Vec<Arc<RankShared>> = (0..n)
        .map(|r| {
            let config = EngineConfig {
                cost: spec.cost.clone(),
                eager_limit: spec.eager_limit,
                memory_budget: None,
                allreduce_rs_threshold: 2048,
                topology: spec.topology,
                shared_schedules: true,
                segments: spec.segments,
            };
            let mut state = RankState {
                eng: AbEngine::new(r, n, config, ab.clone()),
                rel: faults.as_ref().map(|_| NodeReliability::new(r, rel_cfg)),
                pending_collective: false,
            };
            // Rebind the collective context: a no-op for solo runs (the
            // engine is born with `world(n)`), the job communicator under
            // `run_live_jobs`.
            state.eng.set_world(world);
            if let Some(t) = &tracer {
                let h = TraceHandle::new(t.clone(), r);
                state.eng.set_tracer(h.clone());
                if let Some(rel) = &mut state.rel {
                    rel.set_tracer(h);
                }
            }
            Arc::new(RankShared {
                rank: r,
                engine: Mutex::new(state),
                mailbox: fabric.mailbox(NodeId(r)),
                fabric: Arc::clone(&fabric),
                signals_enabled: AtomicBool::new(false),
                faults: faults.clone(),
            })
        })
        .collect();
    let finished = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        // The delay-queue worker (only under faults).
        if let Some(fl) = &faults {
            let fl = Arc::clone(fl);
            s.spawn(move || fl.delay_worker());
        }
        // Optional hang watchdog: with `ABR_LIVE_HANG_DUMP=<seconds>` set,
        // a run still alive after that long dumps every rank's reliability
        // window and mailbox depth to stderr (once), for debugging stuck
        // fault scenarios. Exits with the fabric.
        if let Some(secs) = abr_trace::parse_env("ABR_LIVE_HANG_DUMP", |s| {
            s.parse::<u64>()
                .map_err(|e| format!("must be a number of seconds: {e}"))
        }) {
            let shareds = shareds.clone();
            let fabric = Arc::clone(&fabric);
            s.spawn(move || {
                let start = Instant::now();
                let mut dumped = false;
                while !fabric.mailbox(NodeId(0)).is_closed() {
                    std::thread::sleep(Duration::from_millis(50));
                    if !dumped && start.elapsed() >= Duration::from_secs(secs) {
                        dumped = true;
                        eprintln!("=== live hang dump after {secs}s ===");
                        for sh in &shareds {
                            let mail = sh.mailbox.len();
                            match sh.engine.try_lock() {
                                Ok(st) => {
                                    let rel = st
                                        .rel
                                        .as_ref()
                                        .map(|r| r.debug_summary())
                                        .unwrap_or_default();
                                    eprintln!(
                                        "rank {:2}: mail={mail} {rel} eng={:?}",
                                        sh.rank,
                                        st.eng.counters()
                                    );
                                }
                                Err(_) => {
                                    eprintln!("rank {:2}: mail={mail} <engine lock held>", sh.rank)
                                }
                            }
                        }
                    }
                }
            });
        }
        // Dispatcher threads (the NIC/kernel signal path).
        for shared in &shareds {
            let shared = Arc::clone(shared);
            s.spawn(move || dispatcher_loop(shared));
        }
        // Application threads.
        for (r, slot) in results.iter_mut().enumerate() {
            let shared = Arc::clone(&shareds[r]);
            let fabric = Arc::clone(&fabric);
            let faults = &faults;
            let f = &f;
            let finished = &finished;
            s.spawn(move || {
                // Declared before `f` runs so its Drop observes a panic
                // inside the closure and tears the fabric down.
                let _guard = ShutdownGuard {
                    fabric: &fabric,
                    faults: faults.as_ref(),
                    finished,
                    n: n as usize,
                };
                let ctx = RankCtx {
                    rank: r as u32,
                    size: n,
                    comm: world,
                    shared: Arc::clone(&shared),
                };
                *slot = Some(f(&ctx));
            });
        }
    });
    let mut rel = RelStats::default();
    for shared in &shareds {
        let st = shared.engine.lock().expect("engine lock poisoned");
        if let Some(r) = &st.rel {
            rel.merge(&r.stats());
        }
    }
    LiveOutcome {
        results: results.into_iter().map(|r| r.unwrap()).collect(),
        rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes};

    fn spec(n: u32) -> ClusterSpec {
        ClusterSpec::homogeneous_1000(n)
    }

    #[test]
    fn live_reduce_sums_across_threads() {
        let results = run_live(&spec(8), AbConfig::default(), |ctx| {
            let data = f64s_to_bytes(&[ctx.rank() as f64, 1.0]);
            ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap()
        });
        let root = results[0].as_ref().expect("root gets the result");
        assert_eq!(bytes_to_f64s(root), vec![28.0, 8.0]);
        for r in &results[1..] {
            assert!(r.is_none());
        }
    }

    #[test]
    fn live_baseline_matches_bypass_result() {
        for ab in [AbConfig::disabled(), AbConfig::default()] {
            let results = run_live(&spec(5), ab, |ctx| {
                let data = f64s_to_bytes(&[(ctx.rank() + 1) as f64]);
                ctx.reduce(2, ReduceOp::Prod, Datatype::F64, &data).unwrap()
            });
            assert_eq!(bytes_to_f64s(results[2].as_ref().unwrap()), vec![120.0]);
        }
    }

    #[test]
    fn live_allreduce_and_barrier() {
        let results = run_live(&spec(6), AbConfig::default(), |ctx| {
            ctx.barrier();
            let data = f64s_to_bytes(&[1.0]);
            let out = ctx.allreduce(ReduceOp::Sum, Datatype::F64, &data).unwrap();
            ctx.barrier();
            bytes_to_f64s(&out)[0]
        });
        assert!(results.iter().all(|&x| x == 6.0));
    }

    #[test]
    fn live_internal_node_returns_while_child_sleeps() {
        // The headline behaviour, on real threads: rank 2 (internal) must
        // return from reduce() long before late rank 3 even starts.
        let results = run_live(&spec(4), AbConfig::default(), |ctx| {
            if ctx.rank() == 3 {
                std::thread::sleep(Duration::from_millis(150));
            }
            let data = f64s_to_bytes(&[ctx.rank() as f64]);
            let before = Instant::now();
            let out = ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap();
            let call = before.elapsed();
            if ctx.rank() == 2 {
                // "Other processing" — the window application bypass buys.
                // The late child's message arrives in here and must be
                // handled by the dispatcher's signal path.
                std::thread::sleep(Duration::from_millis(400));
            }
            ctx.barrier();
            (out, call, ctx.stats())
        });
        let (root_out, _, _) = &results[0];
        assert_eq!(bytes_to_f64s(root_out.as_ref().unwrap()), vec![6.0]);
        let (_, call2, stats2) = &results[2];
        assert!(
            *call2 < Duration::from_millis(100),
            "internal node blocked for {call2:?} despite application bypass"
        );
        assert_eq!(stats2.ab.ab_reductions, 1);
        assert_eq!(stats2.ab.delegated_to_async, 1, "{:?}", stats2.ab);
        assert!(
            stats2.ab.async_children >= 1 && stats2.ab.signals_handled >= 1,
            "late child must be handled by the signal path: {:?}",
            stats2.ab
        );
    }

    #[test]
    fn live_split_phase_root_overlaps_compute() {
        let results = run_live(&spec(8), AbConfig::default(), |ctx| {
            let data = f64s_to_bytes(&[ctx.rank() as f64]);
            if ctx.rank() == 0 {
                let split = ctx.reduce_split(0, ReduceOp::Sum, Datatype::F64, &data);
                // "Compute" while the reduction completes via signals.
                let mut spins = 0u64;
                while !split.test() && spins < 5_000_000 {
                    spins += 1;
                    std::hint::spin_loop();
                }
                let out = split.wait().unwrap();
                ctx.barrier();
                out
            } else {
                std::thread::sleep(Duration::from_millis(5 * ctx.rank() as u64));
                ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap();
                ctx.barrier();
                None
            }
        });
        let total: f64 = (0..8).map(|r| r as f64).sum();
        assert_eq!(bytes_to_f64s(results[0].as_ref().unwrap()), vec![total]);
    }

    #[test]
    fn live_split_allreduce_everywhere() {
        let results = run_live(&spec(8), AbConfig::default(), |ctx| {
            let data = f64s_to_bytes(&[ctx.rank() as f64]);
            let h = ctx.allreduce_split(ReduceOp::Sum, Datatype::F64, &data);
            // Overlap with "compute".
            std::thread::sleep(Duration::from_millis(2 + ctx.rank() as u64));
            let out = h.wait().unwrap().expect("allreduce yields data everywhere");
            ctx.barrier();
            bytes_to_f64s(&out)
        });
        let expect: f64 = (0..8).map(f64::from).sum();
        for (r, vals) in results.iter().enumerate() {
            assert_eq!(vals, &vec![expect], "rank {r}");
        }
    }

    #[test]
    fn live_split_bcast_overlaps_compute() {
        let payload = Bytes::from(vec![0xAAu8; 32]);
        let expect = payload.clone();
        let results = run_live(&spec(8), AbConfig::default(), move |ctx| {
            let data = (ctx.rank() == 0).then(|| payload.clone());
            if ctx.rank() != 0 {
                // Interior/leaf ranks post first, then go compute; the
                // payload arrives via the dispatcher.
                let h = ctx.bcast_split(0, data, 32);
                std::thread::sleep(Duration::from_millis(10));
                let out = h.wait().unwrap();
                ctx.barrier();
                out
            } else {
                std::thread::sleep(Duration::from_millis(30)); // late root
                let h = ctx.bcast_split(0, data, 32);
                let out = h.wait().unwrap();
                ctx.barrier();
                out
            }
        });
        for (r, out) in results.iter().enumerate() {
            assert_eq!(out.as_ref().unwrap(), &expect, "rank {r}");
        }
    }

    #[test]
    fn live_point_to_point() {
        let results = run_live(&spec(2), AbConfig::default(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, Bytes::from(vec![42u8; 16])).unwrap();
                None
            } else {
                Some(ctx.recv(Some(0), TagSel::Is(7), 64).unwrap())
            }
        });
        assert_eq!(results[1].as_ref().unwrap().as_ref(), &[42u8; 16]);
    }

    #[test]
    fn live_panicking_rank_fails_fast_without_hanging() {
        // Regression: a rank panicking mid-reduction must propagate the
        // panic out of run_live with every thread joined — not leave the
        // other ranks blocked forever on a reduction that cannot complete.
        let start = Instant::now();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_live(&spec(4), AbConfig::default(), |ctx| {
                if ctx.rank() == 3 {
                    // Die *mid-reduction*: the other ranks are already
                    // inside the blocking call waiting for this child.
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("rank 3 simulated hardware failure");
                }
                let data = f64s_to_bytes(&[1.0]);
                ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap()
            })
        }));
        assert!(res.is_err(), "the rank panic must propagate");
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "shutdown hung for {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn live_faults_none_plan_reports_zero_rel_activity() {
        let out = run_live_faults(
            &spec(4),
            AbConfig::default(),
            &FaultPlan::none(),
            RelConfig::live_default(),
            |ctx| {
                let data = f64s_to_bytes(&[1.0]);
                ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap()
            },
        );
        assert_eq!(bytes_to_f64s(out.results[0].as_ref().unwrap()), vec![4.0]);
        assert_eq!(out.rel, RelStats::default());
    }

    #[test]
    fn live_jobs_run_concurrently_and_independently() {
        // Three differently-sized jobs co-scheduled on real threads: each
        // job's allreduce must see only its own ranks' contributions.
        let sizes = [4u32, 2, 3];
        let results = run_live_jobs(&spec(4), AbConfig::default(), &sizes, |job, ctx| {
            let data = f64s_to_bytes(&[(ctx.rank() + 1) as f64]);
            let out = ctx.allreduce(ReduceOp::Sum, Datatype::F64, &data).unwrap();
            (job, bytes_to_f64s(&out)[0])
        });
        assert_eq!(results.len(), 3);
        for (j, &sz) in sizes.iter().enumerate() {
            let expect: f64 = (1..=sz).map(f64::from).sum();
            assert_eq!(results[j].len(), sz as usize, "job {j} rank count");
            for (r, &(job, v)) in results[j].iter().enumerate() {
                assert_eq!(job, j as u32, "job {j} rank {r} saw the wrong job id");
                assert_eq!(v, expect, "job {j} rank {r} reduced across job lines");
            }
        }
    }

    #[test]
    fn live_back_to_back_reductions() {
        let rounds = 10usize;
        let results = run_live(&spec(4), AbConfig::default(), |ctx| {
            let mut outs = Vec::new();
            for k in 0..rounds {
                let data = f64s_to_bytes(&[(ctx.rank() as f64) * (k + 1) as f64]);
                let out = ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap();
                if let Some(d) = out {
                    outs.push(bytes_to_f64s(&d)[0]);
                }
            }
            ctx.barrier();
            outs
        });
        let base: f64 = (0..4).map(|r| r as f64).sum();
        let expect: Vec<f64> = (0..rounds).map(|k| base * (k + 1) as f64).collect();
        assert_eq!(results[0], expect);
    }
}
