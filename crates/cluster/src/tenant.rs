//! The multi-tenant collective-service harness.
//!
//! Runs a seeded [`JobMix`] — shuffle+reduce jobs and iterative-allreduce
//! training jobs — co-scheduled on one cluster through the DES driver's
//! multi-job construction path ([`DesDriver::new_jobs`]): each job gets its
//! own engine set over job-local ranks and its own
//! [`Communicator::job`] context, while co-located ranks contend for their
//! node's NIC-injection clock and (when blocked-polling) stretch each
//! other's CPU work. The harness turns the per-job results into the
//! saturation figure's metrics: aggregate reductions/sec, pooled
//! p50/p99/p999 iteration latency, and Jain fairness across jobs.
//!
//! The headline: under the nab baseline every blocked rank busy-polls,
//! burning exactly the host CPU its co-tenants need, so throughput
//! collapses and tails explode as offered load rises; application bypass
//! blocks ranks quietly and keeps the service near its fair share.

use crate::driver::{DesDriver, NodeResult};
use crate::node::ClusterSpec;
use crate::program::{Program, Step, StepCtx};
use crate::report::Percentiles;
use abr_core::{AbConfig, AbEngine};
use abr_des::rng::StreamRng;
use abr_des::{SimDuration, SimTime};
use abr_jobs::{place, JobKind, JobMix, JobSpec, PlacePolicy, Placement};
use abr_mpr::engine::{Engine, EngineConfig, MessageEngine};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};
use abr_mpr::Communicator;
use bytes::Bytes;

/// RNG stream label for per-rank compute jitter.
const STREAM_JITTER: u64 = 0x54454e4a; // "TENJ"

/// One tenant-service run: a mix, a cluster, and how to pack one onto the
/// other.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// The cluster hosting the mix.
    pub cluster: ClusterSpec,
    /// The co-scheduled jobs.
    pub mix: JobMix,
    /// Ranks one node can host.
    pub slots: usize,
    /// Placement policy.
    pub policy: PlacePolicy,
    /// `true` runs application-bypass engines, `false` the busy-polling
    /// baseline.
    pub ab: bool,
}

/// Per-job outcome of a tenant run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Dense job id.
    pub job: u32,
    /// Job shape label (`"shuffle"` / `"train"`).
    pub kind: &'static str,
    /// Ranks in the job.
    pub ranks: u32,
    /// Reductions the job completed (one per iteration).
    pub reductions: u64,
    /// Virtual time at which the job finished (µs).
    pub finish_us: f64,
    /// Per-iteration wall latencies observed at the job's rank 0 (µs).
    pub iter_us: Vec<f64>,
}

impl JobOutcome {
    /// The job's throughput in reductions per virtual second.
    pub fn reductions_per_sec(&self) -> f64 {
        if self.finish_us <= 0.0 {
            return 0.0;
        }
        self.reductions as f64 / (self.finish_us / 1e6)
    }
}

/// Aggregate outcome of a tenant run.
#[derive(Debug, Clone)]
pub struct TenantResult {
    /// Per-job outcomes, in job-id order.
    pub jobs: Vec<JobOutcome>,
    /// Virtual time at which the last job finished (µs).
    pub makespan_us: f64,
    /// Aggregate service throughput: total reductions over the makespan.
    pub reductions_per_sec: f64,
    /// Pooled per-iteration latency tails across every job.
    pub latency: Percentiles,
    /// Jain fairness index over per-job throughput: 1.0 when every job
    /// gets an identical share, toward `1/n` as one job starves the rest.
    pub fairness: f64,
    /// DES events processed (diagnostic).
    pub events: u64,
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over per-job shares.
/// Returns 1.0 for an empty or all-zero set (nothing to be unfair about).
pub fn jain_fairness(shares: &[f64]) -> f64 {
    let n = shares.len() as f64;
    let sum: f64 = shares.iter().sum();
    let sq: f64 = shares.iter().map(|x| x * x).sum();
    if n == 0.0 || sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sq)
}

/// What a [`TenantProgram`] does next.
enum Stage {
    /// Start an iteration (or finish the program).
    NewIter,
    /// Think time charged; run the iteration's communication.
    Communicate,
    /// Shuffle hop sent; receive the neighbour's block.
    ShuffleRecv,
    /// Shuffle done; reduce to the job root.
    ShuffleReduce,
    /// The iteration's final collective completed; account and loop.
    Account,
    /// All iterations done.
    Finished,
}

/// One rank of one tenant job: `iters` iterations of think-then-communicate.
///
/// * [`JobKind::Training`]: think, then a blocking gradient allreduce.
/// * [`JobKind::ShuffleReduce`]: think, shuffle the partial result one hop
///   around the job ring (eager send + receive), then reduce to rank 0 —
///   the MapReduce shuffle+reduce shape. The blocking reduce is the §IV-E
///   showcase: ab interior ranks split-exit immediately while nab ranks
///   busy-poll for their late children.
///
/// The *program* is identical under both engines — the service-level
/// difference is entirely how each engine waits. A blocked nab rank
/// busy-polls, burning a host core its co-tenants need; a blocked ab rank
/// sleeps on NIC signals and burns nothing.
///
/// Rank 0 records one `"iter_us"` observation per iteration (wall latency
/// of the whole iteration) and a final `"done_us"` stamp; the harness
/// aggregates those into the saturation metrics.
pub struct TenantProgram {
    kind: JobKind,
    rank: u32,
    size: u32,
    iters: u32,
    think: SimDuration,
    jitter: SimDuration,
    payload: Vec<u8>,
    block: Bytes,
    rng: StreamRng,
    iter: u32,
    stage: Stage,
    iter_start: SimTime,
}

impl TenantProgram {
    /// Build the program for `rank` of `spec`.
    pub fn new(spec: &JobSpec, rank: u32) -> TenantProgram {
        let elems = spec.elems as usize;
        TenantProgram {
            kind: spec.kind,
            rank,
            size: spec.ranks,
            iters: spec.iters,
            think: SimDuration::from_us(spec.think_us),
            jitter: SimDuration::from_us(spec.jitter_us),
            payload: f64s_to_bytes(&vec![1.0; elems]),
            block: Bytes::from(f64s_to_bytes(&vec![rank as f64; elems])),
            rng: StreamRng::root(spec.seed).derive(&[STREAM_JITTER, rank as u64]),
            iter: 0,
            stage: Stage::NewIter,
            iter_start: SimTime::ZERO,
        }
    }

    /// Programs for every rank of `spec`, in rank order.
    pub fn job(spec: &JobSpec) -> Vec<TenantProgram> {
        (0..spec.ranks)
            .map(|r| TenantProgram::new(spec, r))
            .collect()
    }

    /// The iteration's seeded compute step. The jitter de-synchronizes
    /// ranks — the straggler skew that makes bypass matter — and is an
    /// absolute quantity ([`JobSpec::jitter_us`]), so at saturating load
    /// (short think) blocked peers spend most of each iteration waiting
    /// on the slowest rank.
    fn think_step(&mut self) -> Step {
        let jitter = self.rng.below(self.jitter.as_nanos() + 1);
        Step::Busy(SimDuration::from_nanos(self.think.as_nanos() + jitter))
    }
}

impl Program for TenantProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        loop {
            match self.stage {
                Stage::NewIter => {
                    if self.iter == self.iters {
                        if self.rank == 0 {
                            ctx.record("done_us", ctx.now.as_us_f64());
                        }
                        self.stage = Stage::Finished;
                        return Step::Done;
                    }
                    self.iter_start = ctx.now;
                    self.stage = Stage::Communicate;
                    return self.think_step();
                }
                Stage::Communicate => match self.kind {
                    JobKind::Training => {
                        self.stage = Stage::Account;
                        return Step::Allreduce {
                            op: ReduceOp::Sum,
                            dtype: Datatype::F64,
                            data: self.payload.clone(),
                        };
                    }
                    JobKind::ShuffleReduce => {
                        if self.size == 1 {
                            self.stage = Stage::Account;
                            return Step::Reduce {
                                root: 0,
                                op: ReduceOp::Sum,
                                dtype: Datatype::F64,
                                data: self.payload.clone(),
                            };
                        }
                        self.stage = Stage::ShuffleRecv;
                        return Step::Send {
                            dst: (self.rank + 1) % self.size,
                            tag: self.iter as i32,
                            data: self.block.clone(),
                        };
                    }
                },
                Stage::ShuffleRecv => {
                    self.stage = Stage::ShuffleReduce;
                    return Step::Recv {
                        src: (self.rank + self.size - 1) % self.size,
                        tag: self.iter as i32,
                        cap: self.block.len(),
                    };
                }
                Stage::ShuffleReduce => {
                    self.stage = Stage::Account;
                    return Step::Reduce {
                        root: 0,
                        op: ReduceOp::Sum,
                        dtype: Datatype::F64,
                        data: self.payload.clone(),
                    };
                }
                Stage::Account => {
                    if self.rank == 0 {
                        let lat = ctx.now.saturating_since(self.iter_start);
                        ctx.record("iter_us", lat.as_us_f64());
                    }
                    self.iter += 1;
                    self.stage = Stage::NewIter;
                    // Loop: the next iteration's Busy step comes out of
                    // NewIter without yielding a zero-duration step.
                }
                Stage::Finished => return Step::Done,
            }
        }
    }
}

/// One point of the saturation sweep the tenant figure draws.
///
/// Offered load `load` scales the *demand* on a **fixed** cluster along
/// both axes a shared service sees: `ceil(base_jobs × load)` co-scheduled
/// jobs, each communicating `load`× more often (shorter think time). The
/// cluster is sized once, for the top of the ladder (`max_load`, `slots`
/// ranks per node), so the relaxed end of the sweep spreads ranks thinly
/// across near-empty nodes — no co-tenancy, both engines network-bound —
/// while the saturated end fills every slot and the engines' waiting
/// disciplines (busy-poll vs signal-sleep) decide who keeps serving.
///
/// # Panics
/// Panics if `load` exceeds `max_load` (the point would not fit the
/// cluster) or on degenerate ladder parameters.
pub fn saturation_config(
    seed: u64,
    base_jobs: usize,
    load: f64,
    max_load: f64,
    slots: usize,
    ab: bool,
) -> TenantConfig {
    assert!(
        load <= max_load,
        "sweep point {load} above the ladder top {max_load}"
    );
    let n_jobs = |l: f64| ((base_jobs as f64 * l).ceil() as usize).max(1);
    let peak = JobMix::generate(seed, n_jobs(max_load), max_load);
    let nodes = peak.total_ranks().div_ceil(slots).max(2);
    TenantConfig {
        cluster: ClusterSpec::homogeneous_1000(nodes as u32),
        mix: JobMix::generate(seed, n_jobs(load), load),
        slots,
        policy: PlacePolicy::Packed,
        ab,
    }
}

/// Place `cfg.mix` on `cfg.cluster` and run it to completion through the
/// DES driver's multi-job path. Panics on a placement that does not fit
/// (the figure bin sizes its cluster from the mix).
pub fn run_tenant(cfg: &TenantConfig) -> TenantResult {
    let placement = place(&cfg.mix, cfg.cluster.len(), cfg.slots, cfg.policy)
        .expect("tenant mix must fit the cluster");
    if cfg.ab {
        run_tenant_driver(cfg, &placement, |job, rank, size, ec| {
            let mut e = AbEngine::new(rank, size, ec, AbConfig::default());
            e.set_world(Communicator::job(job, size));
            e
        })
    } else {
        run_tenant_driver(cfg, &placement, |job, rank, size, ec| {
            let mut e = Engine::new(rank, size, ec);
            e.set_world(Communicator::job(job, size));
            e
        })
    }
}

fn run_tenant_driver<E: MessageEngine>(
    cfg: &TenantConfig,
    placement: &Placement,
    make_engine: impl FnMut(u32, u32, u32, EngineConfig) -> E,
) -> TenantResult {
    let programs: Vec<Vec<TenantProgram>> = cfg.mix.jobs.iter().map(TenantProgram::job).collect();
    let mut driver = DesDriver::new_jobs(&cfg.cluster, &placement.node_of, make_engine, programs);
    driver.run();
    let events = driver.events_processed();
    let by_job = driver.results_by_job();
    summarize(&cfg.mix, by_job, events)
}

/// Fold per-job driver results into the saturation metrics.
fn summarize(mix: &JobMix, by_job: Vec<Vec<NodeResult>>, events: u64) -> TenantResult {
    assert_eq!(by_job.len(), mix.jobs.len());
    let mut jobs = Vec::with_capacity(mix.jobs.len());
    let mut pooled: Vec<f64> = Vec::new();
    for (spec, ranks) in mix.jobs.iter().zip(by_job) {
        let root = &ranks[0];
        let iter_us: Vec<f64> = root
            .obs
            .iter()
            .filter(|o| o.key == "iter_us")
            .map(|o| o.value)
            .collect();
        let finish_us = root
            .obs
            .iter()
            .rfind(|o| o.key == "done_us")
            .map(|o| o.value)
            .expect("every tenant job stamps done_us at rank 0");
        assert_eq!(
            iter_us.len(),
            spec.iters as usize,
            "{}: one latency sample per iteration",
            spec.id
        );
        pooled.extend_from_slice(&iter_us);
        jobs.push(JobOutcome {
            job: spec.id.0,
            kind: spec.kind.label(),
            ranks: spec.ranks,
            reductions: spec.reductions(),
            finish_us,
            iter_us,
        });
    }
    let makespan_us = jobs.iter().map(|j| j.finish_us).fold(0.0, f64::max);
    let total: u64 = jobs.iter().map(|j| j.reductions).sum();
    let reductions_per_sec = if makespan_us > 0.0 {
        total as f64 / (makespan_us / 1e6)
    } else {
        0.0
    };
    let shares: Vec<f64> = jobs.iter().map(JobOutcome::reductions_per_sec).collect();
    TenantResult {
        makespan_us,
        reductions_per_sec,
        latency: Percentiles::from_unsorted(&mut pooled),
        fairness: jain_fairness(&shares),
        jobs,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64, n_jobs: usize, load: f64, ab: bool) -> TenantConfig {
        let mix = JobMix::generate(seed, n_jobs, load);
        // Four slots per node: every 4/8/16-rank job shares nodes with
        // its own ranks and (under Packed) with other jobs.
        let nodes = mix.total_ranks().div_ceil(4).max(2);
        TenantConfig {
            cluster: ClusterSpec::homogeneous_1000(nodes as u32),
            mix,
            slots: 4,
            policy: PlacePolicy::Packed,
            ab,
        }
    }

    #[test]
    fn tenant_run_is_deterministic() {
        let cfg = config(11, 3, 2.0, true);
        let a = run_tenant(&cfg);
        let b = run_tenant(&cfg);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.events, b.events);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.finish_us, y.finish_us);
            assert_eq!(x.iter_us, y.iter_us);
        }
    }

    #[test]
    fn tenant_metrics_are_complete_and_sane() {
        let cfg = config(5, 4, 2.0, true);
        let r = run_tenant(&cfg);
        assert_eq!(r.jobs.len(), 4);
        assert!(r.makespan_us > 0.0);
        assert!(r.reductions_per_sec > 0.0);
        assert!(r.latency.p50 > 0.0 && r.latency.p50 <= r.latency.p999);
        assert!(r.fairness > 0.0 && r.fairness <= 1.0 + 1e-9);
        for j in &r.jobs {
            assert!(j.finish_us <= r.makespan_us);
            assert_eq!(j.iter_us.len() as u64, j.reductions);
        }
    }

    #[test]
    fn bypass_beats_baseline_under_contention() {
        // A saturated sweep point: slots full, nab's blocked ranks
        // busy-poll on the shared host CPUs, so the service completes
        // the same mix slower than ab end to end.
        let nab = run_tenant(&saturation_config(23, 2, 8.0, 8.0, 4, false));
        let ab = run_tenant(&saturation_config(23, 2, 8.0, 8.0, 4, true));
        assert!(
            ab.reductions_per_sec > nab.reductions_per_sec,
            "ab {:.1} red/s must beat nab {:.1} red/s under contention",
            ab.reductions_per_sec,
            nab.reductions_per_sec
        );
    }

    #[test]
    fn relaxed_sweep_point_spreads_ranks_without_co_tenancy() {
        // The bottom of the ladder must be contention-free: the cluster is
        // sized for the top, so a load-1 mix spreads one rank per node and
        // the two engines see (near-)identical conditions.
        let cfg = saturation_config(17, 2, 1.0, 8.0, 4, false);
        let placement = place(&cfg.mix, cfg.cluster.len(), cfg.slots, cfg.policy)
            .expect("relaxed point must fit");
        let mut per_node = vec![0u32; cfg.cluster.len()];
        for &n in placement.node_of.iter().flatten() {
            per_node[n] += 1;
        }
        assert!(
            per_node.iter().all(|&c| c <= 1),
            "relaxed point co-located ranks: {per_node:?}"
        );
    }

    #[test]
    fn jain_fairness_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_fairness(&[2.0, 2.0, 2.0]), 1.0);
        let skewed = jain_fairness(&[10.0, 1.0, 1.0, 1.0]);
        assert!(skewed < 0.6, "skewed shares must score low, got {skewed}");
        assert!(skewed >= 0.25, "bounded below by 1/n, got {skewed}");
    }
}

/// Ignored-by-default diagnostic: dump the saturation ladder across a few
/// seeds to eyeball the widening mechanism when tuning the workload model.
/// Run with
/// `cargo test -p abr_cluster --lib diag -- --ignored --nocapture`.
#[cfg(test)]
mod diag {
    use super::*;

    #[test]
    #[ignore = "diagnostic dump for tuning, not an assertion"]
    fn dump_tenant_diagnostics() {
        for seed in [17u64, 23, 99] {
            for load in [1.0, 2.0, 4.0, 8.0] {
                for ab in [false, true] {
                    let cfg = saturation_config(seed, 2, load, 8.0, 4, ab);
                    let jobs = cfg.mix.jobs.len();
                    let ranks = cfg.mix.total_ranks();
                    let nodes = cfg.cluster.len();
                    let r = run_tenant(&cfg);
                    println!(
                        "seed={seed} load={load} ab={ab} jobs={jobs} ranks={ranks} nodes={nodes} mk={:.0}us red/s={:.0} p50={:.0} p99={:.0} fair={:.3}",
                        r.makespan_us, r.reductions_per_sec, r.latency.p50, r.latency.p99, r.fairness
                    );
                }
            }
        }
    }
}
