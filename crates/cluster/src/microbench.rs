//! The paper's two microbenchmarks (§VI), parameterized like the figures.
//!
//! **CPU utilization**: per iteration each node opens a measurement window,
//! busy-loops a random skew in `[0, max_skew]`, performs the reduction,
//! busy-loops a catch-up delay (max skew plus a conservative bound on the
//! reduction latency, so asynchronous processing lands inside the window),
//! closes the window and subtracts the two injected delays. Iterations are
//! separated by barriers. The figure metric is the average across all nodes
//! and iterations.
//!
//! **Latency**: first the one-way small-message latency between the root
//! and the *last node* (deepest in the tree) is measured by ping-pong; then
//! each iteration times from the instant the last node enters the reduction
//! until it receives the root's completion notification, minus the one-way
//! latency. No skew is injected.

use crate::driver::{DesDriver, NodeResult};
use crate::node::ClusterSpec;
use crate::program::{Program, Step, StepCtx};
use abr_core::{AbConfig, AbEngine, DelayPolicy};
use abr_des::rng::StreamRng;
use abr_des::stats::Accumulator;
use abr_des::{SimDuration, SimTime};
use abr_faults::{FaultPlan, RelConfig, RelStats};
use abr_mpr::engine::{Engine, EngineConfig, MessageEngine};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype, Rank};
use abr_trace::Tracer;
use bytes::Bytes;
use std::sync::Arc;

/// Which implementation to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Stock blocking MPICH reduction (`nab`).
    Baseline,
    /// Application-bypass reduction (`ab`) with an exit-delay policy.
    Bypass(DelayPolicy),
    /// The split-phase extension: every rank, root included, posts
    /// non-blocking and waits at the end of the iteration.
    SplitPhase,
    /// The NIC-based reduction extension (§VII): the NIC processor folds
    /// children in; no host polling and no host signals for late children.
    NicBypass,
}

impl Mode {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Baseline => "nab",
            Mode::Bypass(_) => "ab",
            Mode::SplitPhase => "ab-split",
            Mode::NicBypass => "ab-nic",
        }
    }
}

/// Which collective the CPU-utilization benchmark exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchColl {
    /// The paper's rooted reduction (the default everywhere).
    Reduce,
    /// Träff's dual-root doubly-pipelined allreduce (the bandwidth
    /// figure's third series).
    DualAllreduce,
}

/// CPU-utilization benchmark parameters.
#[derive(Debug, Clone)]
pub struct CpuUtilConfig {
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Elements per message (double words, as in the paper).
    pub elems: usize,
    /// Maximum random skew per node per iteration, µs.
    pub max_skew_us: u64,
    /// Iterations (the paper used 10,000; a few hundred converge).
    pub iters: u64,
    /// Root rank.
    pub root: Rank,
    /// Implementation under test.
    pub mode: Mode,
    /// RNG seed (same seed ⇒ same skew schedule for both modes).
    pub seed: u64,
    /// Conservative bound on the reduction latency added to the catch-up
    /// delay (µs).
    pub catchup_margin_us: u64,
    /// Naturally-occurring skew (OS noise, daemons, cache effects) present
    /// regardless of the injected skew — the effect §VI-B attributes the
    /// no-skew results to. Uniform in `[0, natural_jitter_us]`, drawn per
    /// node per iteration, and subtracted from the measurement like the
    /// injected delays.
    pub natural_jitter_us: u64,
    /// Fault plan injected into the network ([`FaultPlan::none`] = clean
    /// wire, zero-cost).
    pub faults: FaultPlan,
    /// Collective under test ([`BenchColl::Reduce`] reproduces the paper's
    /// microbenchmark; the bandwidth figure also sweeps the dual-root
    /// allreduce).
    pub coll: BenchColl,
    /// Record the per-iteration wall time of the collective (post to
    /// completion) as an `"iter_wall_us"` observation. Off by default: the
    /// paper's figures measure CPU, not wall, and skew makes wall noisy.
    pub record_wall: bool,
}

impl CpuUtilConfig {
    /// Paper-style defaults over a given cluster.
    pub fn new(cluster: ClusterSpec, mode: Mode) -> Self {
        CpuUtilConfig {
            cluster,
            elems: 4,
            max_skew_us: 1000,
            iters: 300,
            root: 0,
            mode,
            seed: 0xC0FFEE,
            catchup_margin_us: 400,
            natural_jitter_us: 40,
            faults: FaultPlan::none(),
            coll: BenchColl::Reduce,
            record_wall: false,
        }
    }
}

/// CPU-utilization results.
#[derive(Debug, Clone)]
pub struct CpuUtilResult {
    /// The figure metric: mean per-reduction CPU µs, averaged over nodes
    /// and iterations.
    pub mean_cpu_us: f64,
    /// Per-node means.
    pub per_node_us: Vec<f64>,
    /// Total signals taken across the run.
    pub signals: u64,
    /// Signals suppressed because progress was underway.
    pub signals_suppressed: u64,
    /// Sum of interesting engine counters across nodes.
    pub counters: Vec<(&'static str, u64)>,
    /// Median per-reduction CPU across all observations (µs).
    pub p50_us: f64,
    /// 95th-percentile per-reduction CPU (µs) — tail behaviour under skew.
    pub p95_us: f64,
    /// Worst observed per-reduction CPU (µs).
    pub max_us: f64,
    /// Mean per-iteration collective wall time (µs); zero unless
    /// [`CpuUtilConfig::record_wall`] was set.
    pub mean_wall_us: f64,
    /// Total NIC-processor time across the run (µs) — zero unless the
    /// NIC-offload extension is active.
    pub nic_us_total: f64,
    /// Aggregate reliability-layer counters (present only when a fault
    /// plan was active).
    pub rel: Option<RelStats>,
    /// Packets that queued behind a busy fabric link (zero on the flat
    /// crossbar, where links are never shared).
    pub link_waits: u64,
    /// Total time packets spent queued on busy fabric links (µs).
    pub link_wait_us: f64,
    /// Raw per-node results.
    pub nodes: Vec<NodeResult>,
}

struct CpuUtilProgram {
    rank: Rank,
    root: Rank,
    elems: usize,
    iters: u64,
    max_skew_us: u64,
    natural_jitter_us: u64,
    catchup: SimDuration,
    rng: StreamRng,
    iter: u64,
    phase: u8,
    cur_skew: SimDuration,
    coll: BenchColl,
    record_wall: bool,
    t_coll: SimTime,
}

impl CpuUtilProgram {
    /// This rank's contribution for the iteration.
    fn payload(&self) -> Vec<u8> {
        f64s_to_bytes(&vec![self.rank as f64 + 1.0; self.elems])
    }

    /// The blocking collective under test.
    fn blocking_step(&self) -> Step {
        match self.coll {
            BenchColl::Reduce => Step::Reduce {
                root: self.root,
                op: ReduceOp::Sum,
                dtype: Datatype::F64,
                data: self.payload(),
            },
            BenchColl::DualAllreduce => Step::AllreduceDual {
                op: ReduceOp::Sum,
                dtype: Datatype::F64,
                data: self.payload(),
            },
        }
    }

    /// The split-phase collective under test.
    fn split_step(&self) -> Step {
        match self.coll {
            BenchColl::Reduce => Step::ReduceSplit {
                root: self.root,
                op: ReduceOp::Sum,
                dtype: Datatype::F64,
                data: self.payload(),
            },
            BenchColl::DualAllreduce => Step::AllreduceDualSplit {
                op: ReduceOp::Sum,
                dtype: Datatype::F64,
                data: self.payload(),
            },
        }
    }

    /// Record the post-to-completion wall time if asked to.
    fn record_wall_obs(&self, ctx: &mut StepCtx) {
        if self.record_wall {
            ctx.record("iter_wall_us", (ctx.now - self.t_coll).as_us_f64());
        }
    }
}

impl Program for CpuUtilProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        loop {
            if self.iter >= self.iters {
                return Step::Done;
            }
            match self.phase {
                0 => {
                    self.phase = 1;
                    return Step::WindowStart;
                }
                1 => {
                    let mut r = self.rng.derive(&[self.iter, self.rank as u64]);
                    let injected = r.below(self.max_skew_us + 1);
                    let natural = r.below(self.natural_jitter_us + 1);
                    self.cur_skew = SimDuration::from_us(injected + natural);
                    self.phase = 2;
                    return Step::Busy(self.cur_skew);
                }
                2 => {
                    self.phase = 3;
                    self.t_coll = ctx.now;
                    return self.blocking_step();
                }
                3 => {
                    self.record_wall_obs(ctx);
                    self.phase = 4;
                    return Step::Busy(self.catchup);
                }
                4 => {
                    self.phase = 5;
                    return Step::WindowStop;
                }
                5 => {
                    // The paper's subtraction: measured window minus the
                    // two injected busy delays.
                    let window = ctx.last_window.expect("window just closed");
                    let util = window
                        .host_total()
                        .saturating_sub(self.cur_skew)
                        .saturating_sub(self.catchup);
                    ctx.record("cpu_util_us", util.as_us_f64());
                    if !window.nic.is_zero() {
                        ctx.record("nic_us", window.nic.as_us_f64());
                    }
                    self.phase = 6;
                    continue;
                }
                6 => {
                    self.phase = 0;
                    self.iter += 1;
                    return Step::Barrier;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Split-phase variant: post the reduce, overlap the catch-up "computation"
/// with it, and wait at the end of the window.
struct SplitUtilProgram {
    base: CpuUtilProgram,
}

impl Program for SplitUtilProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        let p = &mut self.base;
        loop {
            if p.iter >= p.iters {
                return Step::Done;
            }
            match p.phase {
                0 => {
                    p.phase = 1;
                    return Step::WindowStart;
                }
                1 => {
                    let mut r = p.rng.derive(&[p.iter, p.rank as u64]);
                    let injected = r.below(p.max_skew_us + 1);
                    let natural = r.below(p.natural_jitter_us + 1);
                    p.cur_skew = SimDuration::from_us(injected + natural);
                    p.phase = 2;
                    return Step::Busy(p.cur_skew);
                }
                2 => {
                    p.phase = 3;
                    p.t_coll = ctx.now;
                    return p.split_step();
                }
                3 => {
                    p.phase = 4;
                    return Step::Busy(p.catchup);
                }
                4 => {
                    p.phase = 5;
                    return Step::WaitSplit;
                }
                5 => {
                    p.record_wall_obs(ctx);
                    p.phase = 6;
                    return Step::WindowStop;
                }
                6 => {
                    let window = ctx.last_window.expect("window just closed");
                    let util = window
                        .host_total()
                        .saturating_sub(p.cur_skew)
                        .saturating_sub(p.catchup);
                    ctx.record("cpu_util_us", util.as_us_f64());
                    if !window.nic.is_zero() {
                        ctx.record("nic_us", window.nic.as_us_f64());
                    }
                    p.phase = 7;
                    continue;
                }
                7 => {
                    p.phase = 0;
                    p.iter += 1;
                    return Step::Barrier;
                }
                _ => unreachable!(),
            }
        }
    }
}

fn cpu_util_program(cfg: &CpuUtilConfig, rank: u32) -> CpuUtilProgram {
    let root_rng = StreamRng::root(cfg.seed);
    CpuUtilProgram {
        rank,
        root: cfg.root,
        elems: cfg.elems,
        iters: cfg.iters,
        max_skew_us: cfg.max_skew_us,
        natural_jitter_us: cfg.natural_jitter_us,
        catchup: SimDuration::from_us(cfg.max_skew_us + cfg.catchup_margin_us),
        rng: root_rng.derive(&[0xBE7C, rank as u64]),
        iter: 0,
        phase: 0,
        cur_skew: SimDuration::ZERO,
        coll: cfg.coll,
        record_wall: cfg.record_wall,
        t_coll: SimTime::ZERO,
    }
}

/// Concrete (unboxed) program lists: every rank runs the same program
/// type, so the driver monomorphizes over it and the per-step dispatch in
/// `advance_program` is a direct call, not a vtable hop.
fn cpu_util_programs(cfg: &CpuUtilConfig) -> Vec<CpuUtilProgram> {
    (0..cfg.cluster.len() as u32)
        .map(|rank| cpu_util_program(cfg, rank))
        .collect()
}

fn split_util_programs(cfg: &CpuUtilConfig) -> Vec<SplitUtilProgram> {
    (0..cfg.cluster.len() as u32)
        .map(|rank| SplitUtilProgram {
            base: cpu_util_program(cfg, rank),
        })
        .collect()
}

fn aggregate_cpu(nodes: Vec<NodeResult>) -> CpuUtilResult {
    let mut per_node_us = Vec::with_capacity(nodes.len());
    let mut grand = Accumulator::new();
    let mut wall = Accumulator::new();
    let mut samples = Vec::new();
    for node in &nodes {
        let mut acc = Accumulator::new();
        for o in &node.obs {
            match o.key {
                "cpu_util_us" => {
                    acc.push(o.value);
                    grand.push(o.value);
                    samples.push(o.value);
                }
                "iter_wall_us" => wall.push(o.value),
                _ => {}
            }
        }
        per_node_us.push(acc.mean());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let (p50_us, p95_us) = (
        crate::report::percentile(&samples, 0.5),
        crate::report::percentile(&samples, 0.95),
    );
    let max_us = samples.last().copied().unwrap_or(0.0);
    let signals = nodes.iter().map(|n| n.signals_raised).sum();
    let signals_suppressed = nodes.iter().map(|n| n.signals_suppressed_busy).sum();
    let mut counters: Vec<(&'static str, u64)> = Vec::new();
    for node in &nodes {
        for &(k, v) in &node.counters {
            match counters.iter_mut().find(|(ck, _)| *ck == k) {
                Some((_, cv)) => *cv += v,
                None => counters.push((k, v)),
            }
        }
    }
    let nic_us_total = nodes.iter().map(|n| n.cpu_nic_us).sum();
    CpuUtilResult {
        mean_cpu_us: grand.mean(),
        per_node_us,
        signals,
        signals_suppressed,
        counters,
        p50_us,
        p95_us,
        max_us,
        mean_wall_us: wall.mean(),
        nic_us_total,
        rel: None,
        link_waits: 0,
        link_wait_us: 0.0,
        nodes,
    }
}

/// Run a built driver to completion under the benchmark's fault plan and
/// aggregate into a [`CpuUtilResult`]. Dispatches through
/// [`DesDriver::run_auto`], so `ABR_DES_SHARDS` selects the parallel
/// executor for any benchmark run (the sequential executor remains the
/// default, and the fallback whenever faults or a tracer are installed).
fn run_cpu_driver<E: abr_mpr::engine::MessageEngine + Send, P: Program + Send>(
    mut d: DesDriver<E, P>,
    faults: &FaultPlan,
    tracer: Option<Arc<dyn Tracer>>,
) -> CpuUtilResult {
    if let Some(t) = tracer {
        d.install_tracer(t);
    }
    d.set_faults(faults, RelConfig::sim_default());
    d.run_auto();
    let rel = d.rel_stats();
    let (link_waits, link_wait_us) = (d.network().link_waits(), d.network().link_wait_us());
    let mut res = aggregate_cpu(d.results());
    res.rel = rel;
    res.link_waits = link_waits;
    res.link_wait_us = link_wait_us;
    res
}

/// `ABR_TENANT_SOLO`: when truthy, every microbenchmark driver is built
/// through the multi-tenant jobs path ([`DesDriver::new_jobs`]) as a single
/// job with the identity placement — which must be bit-identical to the
/// legacy solo path. CI pins exactly that: `ABR_TENANT_SOLO=1` fig6 diffs
/// clean against the committed golden.
///
/// # Panics
/// Panics on a set-but-invalid value (anything but `0`/`1`/`false`/`true`).
pub fn tenant_solo_from_env() -> bool {
    abr_trace::parse_env("ABR_TENANT_SOLO", |raw| match raw.trim() {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        _ => Err(format!(
            "ABR_TENANT_SOLO must be 0/1/false/true, got {raw:?}"
        )),
    })
    .unwrap_or(false)
}

/// Build a solo driver for the microbenchmarks: the legacy one-engine-per-
/// rank constructor by default, or — under `ABR_TENANT_SOLO` — the
/// multi-tenant constructor degenerated to one identity-placed job, so the
/// figure suite continuously proves the tenant refactor is behavior-
/// preserving.
fn solo_driver<E: MessageEngine, P: Program>(
    cluster: &ClusterSpec,
    mut make_engine: impl FnMut(u32, EngineConfig) -> E,
    programs: Vec<P>,
) -> DesDriver<E, P> {
    if tenant_solo_from_env() {
        let placement = abr_jobs::Placement::identity(cluster.len());
        DesDriver::new_jobs(
            cluster,
            &placement.node_of,
            |_job, rank, _size, ec| make_engine(rank, ec),
            vec![programs],
        )
    } else {
        DesDriver::new(cluster, make_engine, programs)
    }
}

/// Run the CPU-utilization benchmark.
pub fn run_cpu_util(cfg: &CpuUtilConfig) -> CpuUtilResult {
    run_cpu_util_traced(cfg, None)
}

/// [`run_cpu_util`] with an optional [`Tracer`] installed on the driver
/// (see [`DesDriver::install_tracer`]); `None` is the cost-free default.
pub fn run_cpu_util_traced(cfg: &CpuUtilConfig, tracer: Option<Arc<dyn Tracer>>) -> CpuUtilResult {
    let n = cfg.cluster.len() as u32;
    match cfg.mode {
        Mode::Baseline => {
            let d = solo_driver(
                &cfg.cluster,
                |rank, ec: EngineConfig| Engine::new(rank, n, ec),
                cpu_util_programs(cfg),
            );
            run_cpu_driver(d, &cfg.faults, tracer)
        }
        Mode::Bypass(delay) => {
            let d = solo_driver(
                &cfg.cluster,
                |rank, ec: EngineConfig| {
                    AbEngine::new(
                        rank,
                        n,
                        ec,
                        AbConfig {
                            enabled: true,
                            delay,
                            nic_offload: false,
                        },
                    )
                },
                cpu_util_programs(cfg),
            );
            run_cpu_driver(d, &cfg.faults, tracer)
        }
        Mode::SplitPhase => {
            let d = solo_driver(
                &cfg.cluster,
                |rank, ec: EngineConfig| {
                    AbEngine::new(
                        rank,
                        n,
                        ec,
                        AbConfig {
                            enabled: true,
                            delay: DelayPolicy::None,
                            nic_offload: false,
                        },
                    )
                },
                split_util_programs(cfg),
            );
            run_cpu_driver(d, &cfg.faults, tracer)
        }
        Mode::NicBypass => {
            let d = solo_driver(
                &cfg.cluster,
                |rank, ec: EngineConfig| AbEngine::new(rank, n, ec, AbConfig::nic_offload()),
                cpu_util_programs(cfg),
            );
            run_cpu_driver(d, &cfg.faults, tracer)
        }
    }
}

// ---------------------------------------------------------------------
// Broadcast benchmark (the ref. \[8\] companion system)
// ---------------------------------------------------------------------

/// The broadcast analogue of the CPU-utilization benchmark: a skewed root
/// stalls the whole tree under the blocking broadcast; the bypass version
/// posts, computes through the catch-up delay, and collects the payload at
/// the end.
struct BcastUtilProgram {
    base: CpuUtilProgram,
    split: bool,
}

impl Program for BcastUtilProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        let p = &mut self.base;
        loop {
            if p.iter >= p.iters {
                return Step::Done;
            }
            match p.phase {
                0 => {
                    p.phase = 1;
                    return Step::WindowStart;
                }
                1 => {
                    let mut r = p.rng.derive(&[p.iter, p.rank as u64]);
                    let injected = r.below(p.max_skew_us + 1);
                    let natural = r.below(p.natural_jitter_us + 1);
                    p.cur_skew = SimDuration::from_us(injected + natural);
                    p.phase = 2;
                    return Step::Busy(p.cur_skew);
                }
                2 => {
                    let payload = (p.rank == p.root)
                        .then(|| Bytes::from(f64s_to_bytes(&vec![p.iter as f64; p.elems])));
                    if self.split {
                        p.phase = 3;
                        return Step::BcastSplit {
                            root: p.root,
                            data: payload,
                            len: p.elems * 8,
                        };
                    }
                    p.phase = 4;
                    return Step::Bcast {
                        root: p.root,
                        data: payload,
                        len: p.elems * 8,
                    };
                }
                3 => {
                    p.phase = 35;
                    return Step::Busy(p.catchup);
                }
                35 => {
                    p.phase = 5;
                    return Step::WaitSplit;
                }
                4 => {
                    p.phase = 5;
                    return Step::Busy(p.catchup);
                }
                5 => {
                    p.phase = 6;
                    return Step::WindowStop;
                }
                6 => {
                    let window = ctx.last_window.expect("window just closed");
                    let util = window
                        .host_total()
                        .saturating_sub(p.cur_skew)
                        .saturating_sub(p.catchup);
                    ctx.record("cpu_util_us", util.as_us_f64());
                    p.phase = 7;
                    continue;
                }
                7 => {
                    p.phase = 0;
                    p.iter += 1;
                    return Step::Barrier;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Run the broadcast CPU-utilization benchmark. `Mode::Baseline` is the
/// blocking binomial broadcast; any bypass mode runs the split-phase
/// application-bypass broadcast.
pub fn run_bcast_util(cfg: &CpuUtilConfig) -> CpuUtilResult {
    let n = cfg.cluster.len() as u32;
    let split = !matches!(cfg.mode, Mode::Baseline);
    let root_rng = StreamRng::root(cfg.seed);
    let programs: Vec<BcastUtilProgram> = (0..n)
        .map(|rank| BcastUtilProgram {
            base: CpuUtilProgram {
                rank,
                root: cfg.root,
                elems: cfg.elems,
                iters: cfg.iters,
                max_skew_us: cfg.max_skew_us,
                natural_jitter_us: cfg.natural_jitter_us,
                catchup: SimDuration::from_us(cfg.max_skew_us + cfg.catchup_margin_us),
                rng: root_rng.derive(&[0xBCA7, rank as u64]),
                iter: 0,
                phase: 0,
                cur_skew: SimDuration::ZERO,
                coll: BenchColl::Reduce,
                record_wall: false,
                t_coll: SimTime::ZERO,
            },
            split,
        })
        .collect();
    let ab = if split {
        AbConfig::default()
    } else {
        AbConfig::disabled()
    };
    let d = DesDriver::new(
        &cfg.cluster,
        |rank, ec: EngineConfig| AbEngine::new(rank, n, ec, ab.clone()),
        programs,
    );
    run_cpu_driver(d, &cfg.faults, None)
}

// ---------------------------------------------------------------------
// Application benchmark (§VII: "application-based evaluations")
// ---------------------------------------------------------------------

/// Parameters of the synthetic bulk-synchronous application: per sweep,
/// every rank computes (imbalanced), contributes to a global residual
/// reduction, and the root decides whether to continue.
#[derive(Debug, Clone)]
pub struct AppBenchConfig {
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Sweeps to run.
    pub sweeps: u64,
    /// Mean compute per sweep per rank, µs.
    pub compute_us: u64,
    /// Imbalance: each rank's per-sweep compute is uniform in
    /// `[compute_us, compute_us * (1 + imbalance)]`.
    pub imbalance: f64,
    /// Residual elements reduced per sweep.
    pub elems: usize,
    /// Implementation under test.
    pub mode: Mode,
    /// RNG seed.
    pub seed: u64,
    /// Fault plan injected into the network.
    pub faults: FaultPlan,
}

impl AppBenchConfig {
    /// Defaults mirroring a small imbalanced stencil.
    pub fn new(cluster: ClusterSpec, mode: Mode) -> Self {
        AppBenchConfig {
            cluster,
            sweeps: 50,
            compute_us: 300,
            imbalance: 1.0,
            elems: 4,
            mode,
            seed: 0xA11CE,
            faults: FaultPlan::none(),
        }
    }
}

/// Application benchmark results.
#[derive(Debug, Clone)]
pub struct AppBenchResult {
    /// Virtual wall-clock time to finish all sweeps (µs) — the
    /// application-visible metric.
    pub makespan_us: f64,
    /// Mean per-rank CPU spent in the runtime (polling + protocol +
    /// signals), µs.
    pub runtime_cpu_us: f64,
    /// Signals taken.
    pub signals: u64,
}

struct AppProgram {
    rank: Rank,
    sweeps: u64,
    compute_us: u64,
    imbalance: f64,
    elems: usize,
    split: bool,
    rng: StreamRng,
    sweep: u64,
    phase: u8,
    posted: bool,
}

impl Program for AppProgram {
    fn next(&mut self, _ctx: &mut StepCtx) -> Step {
        loop {
            match self.phase {
                // Compute this sweep's work (or finish).
                0 => {
                    if self.sweep >= self.sweeps {
                        if self.split && self.posted {
                            self.posted = false;
                            self.phase = 4;
                            return Step::WaitSplit; // drain the last reduce
                        }
                        return Step::Done;
                    }
                    let mut r = self.rng.derive(&[self.sweep, self.rank as u64]);
                    let extra = (self.compute_us as f64 * self.imbalance) as u64;
                    let work = self.compute_us + r.below(extra + 1);
                    self.phase = 1;
                    return Step::Busy(SimDuration::from_us(work));
                }
                // Pipelined split mode: collect the *previous* sweep's
                // residual only now — its latency hid under this sweep's
                // compute.
                1 => {
                    if self.split && self.posted {
                        self.posted = false;
                        self.phase = 2;
                        return Step::WaitSplit;
                    }
                    self.phase = 2;
                    continue;
                }
                // Contribute this sweep's residual.
                2 => {
                    let data = f64s_to_bytes(&vec![1.0; self.elems]);
                    self.sweep += 1;
                    self.phase = 0;
                    if self.split {
                        self.posted = true;
                        return Step::ReduceSplit {
                            root: 0,
                            op: ReduceOp::Sum,
                            dtype: Datatype::F64,
                            data,
                        };
                    }
                    return Step::Reduce {
                        root: 0,
                        op: ReduceOp::Sum,
                        dtype: Datatype::F64,
                        data,
                    };
                }
                4 => return Step::Done,
                _ => unreachable!(),
            }
        }
    }
}

/// Run the application benchmark; the headline number is the makespan.
pub fn run_app_bench(cfg: &AppBenchConfig) -> AppBenchResult {
    let n = cfg.cluster.len() as u32;
    let split = matches!(cfg.mode, Mode::SplitPhase);
    let root_rng = StreamRng::root(cfg.seed);
    let programs: Vec<AppProgram> = (0..n)
        .map(|rank| AppProgram {
            rank,
            sweeps: cfg.sweeps,
            compute_us: cfg.compute_us,
            imbalance: cfg.imbalance,
            elems: cfg.elems,
            split,
            rng: root_rng.derive(&[0xA99, rank as u64]),
            sweep: 0,
            phase: 0,
            posted: false,
        })
        .collect();
    let finish = |nodes: Vec<crate::driver::NodeResult>, makespan: f64| {
        let runtime_cpu_us = nodes
            .iter()
            .map(|r| r.cpu_poll_us + r.cpu_protocol_us + r.cpu_signal_us)
            .sum::<f64>()
            / nodes.len() as f64;
        AppBenchResult {
            makespan_us: makespan,
            runtime_cpu_us,
            signals: nodes.iter().map(|r| r.signals_raised).sum(),
        }
    };
    match cfg.mode {
        Mode::Baseline => {
            let mut d = DesDriver::new(
                &cfg.cluster,
                |rank, ec: EngineConfig| AbEngine::new(rank, n, ec, AbConfig::disabled()),
                programs,
            );
            d.set_faults(&cfg.faults, RelConfig::sim_default());
            d.run_auto();
            let makespan = d.now().as_us_f64();
            finish(d.results(), makespan)
        }
        _ => {
            let ab = match cfg.mode {
                Mode::Bypass(delay) => AbConfig {
                    enabled: true,
                    delay,
                    nic_offload: false,
                },
                Mode::NicBypass => AbConfig::nic_offload(),
                _ => AbConfig::default(),
            };
            let mut d = DesDriver::new(
                &cfg.cluster,
                |rank, ec: EngineConfig| AbEngine::new(rank, n, ec, ab.clone()),
                programs,
            );
            d.set_faults(&cfg.faults, RelConfig::sim_default());
            d.run_auto();
            let makespan = d.now().as_us_f64();
            finish(d.results(), makespan)
        }
    }
}

// ---------------------------------------------------------------------
// Latency benchmark
// ---------------------------------------------------------------------

/// Latency benchmark parameters.
#[derive(Debug, Clone)]
pub struct LatencyConfig {
    /// The cluster.
    pub cluster: ClusterSpec,
    /// Elements per message.
    pub elems: usize,
    /// Timed iterations.
    pub iters: u64,
    /// Root rank.
    pub root: Rank,
    /// Implementation under test.
    pub mode: Mode,
    /// Ping-pong rounds for the one-way calibration.
    pub pings: u64,
    /// Fault plan injected into the network.
    pub faults: FaultPlan,
}

impl LatencyConfig {
    /// Paper-style defaults.
    pub fn new(cluster: ClusterSpec, mode: Mode) -> Self {
        LatencyConfig {
            cluster,
            elems: 1,
            iters: 200,
            root: 0,
            mode,
            pings: 20,
            faults: FaultPlan::none(),
        }
    }
}

/// Latency results.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Mean reduction latency (µs), one-way-corrected, as the paper plots.
    pub mean_latency_us: f64,
    /// The measured one-way latency (µs).
    pub one_way_us: f64,
    /// Total signals taken.
    pub signals: u64,
    /// Raw per-node results.
    pub nodes: Vec<NodeResult>,
}

const NOTIFY_TAG: i32 = 990;
const PING_TAG: i32 = 991;
const PONG_TAG: i32 = 992;

/// Which latency-benchmark role a rank plays.
enum LatRole {
    Root { last: Rank },
    Last { root: Rank },
    Other,
}

struct LatencyProgram {
    role: LatRole,
    elems: usize,
    iters: u64,
    pings: u64,
    root: Rank,
    // progress
    ping: u64,
    iter: u64,
    phase: u8,
    t_mark: SimTime,
    rtt_sum: f64,
    one_way_us: f64,
}

impl Program for LatencyProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        loop {
            match self.phase {
                // Phase 0: entry barrier.
                0 => {
                    self.phase = 1;
                    return Step::Barrier;
                }
                // Phase 1: ping-pong calibration (root and last only).
                1 => match &self.role {
                    LatRole::Last { root } => {
                        if self.ping >= self.pings {
                            self.one_way_us = self.rtt_sum / (2.0 * self.pings as f64);
                            ctx.record("one_way_us", self.one_way_us);
                            self.phase = 2;
                            continue;
                        }
                        self.t_mark = ctx.now;
                        self.phase = 10;
                        return Step::Send {
                            dst: *root,
                            tag: PING_TAG,
                            data: Bytes::from(vec![0u8; 8]),
                        };
                    }
                    LatRole::Root { last } => {
                        if self.ping >= self.pings {
                            self.phase = 2;
                            continue;
                        }
                        self.ping += 1;
                        self.phase = 12;
                        let last = *last;
                        return Step::Recv {
                            src: last,
                            tag: PING_TAG,
                            cap: 8,
                        };
                    }
                    LatRole::Other => {
                        self.phase = 2;
                        continue;
                    }
                },
                // Last: waiting for pong.
                10 => {
                    self.phase = 11;
                    let root = match &self.role {
                        LatRole::Last { root } => *root,
                        _ => unreachable!(),
                    };
                    return Step::Recv {
                        src: root,
                        tag: PONG_TAG,
                        cap: 8,
                    };
                }
                11 => {
                    let rtt = (ctx.now - self.t_mark).as_us_f64();
                    self.rtt_sum += rtt;
                    self.ping += 1;
                    self.phase = 1;
                    continue;
                }
                // Root: send the pong back.
                12 => {
                    self.phase = 1;
                    let last = match &self.role {
                        LatRole::Root { last } => *last,
                        _ => unreachable!(),
                    };
                    return Step::Send {
                        dst: last,
                        tag: PONG_TAG,
                        data: Bytes::from(vec![0u8; 8]),
                    };
                }
                // Phase 2: barrier before the timed loop.
                2 => {
                    self.phase = 3;
                    return Step::Barrier;
                }
                // Phase 3: the timed reduction loop.
                3 => {
                    if self.iter >= self.iters {
                        return Step::Done;
                    }
                    self.t_mark = ctx.now;
                    self.phase = 4;
                    return Step::Reduce {
                        root: self.root,
                        op: ReduceOp::Sum,
                        dtype: Datatype::F64,
                        data: f64s_to_bytes(&vec![1.0; self.elems]),
                    };
                }
                4 => match &self.role {
                    LatRole::Root { last } => {
                        // Reduction complete at the root: notify the last
                        // node.
                        self.phase = 6;
                        let last = *last;
                        return Step::Send {
                            dst: last,
                            tag: NOTIFY_TAG,
                            data: Bytes::from(vec![0u8; 8]),
                        };
                    }
                    LatRole::Last { root } => {
                        self.phase = 5;
                        let root = *root;
                        return Step::Recv {
                            src: root,
                            tag: NOTIFY_TAG,
                            cap: 8,
                        };
                    }
                    LatRole::Other => {
                        self.phase = 6;
                        continue;
                    }
                },
                5 => {
                    // Last node: notification received.
                    let total = (ctx.now - self.t_mark).as_us_f64();
                    ctx.record("latency_us", total - self.one_way_us);
                    self.phase = 6;
                    continue;
                }
                6 => {
                    self.iter += 1;
                    self.phase = 3;
                    return Step::Barrier;
                }
                _ => unreachable!(),
            }
        }
    }
}

fn latency_programs(cfg: &LatencyConfig) -> Vec<LatencyProgram> {
    let n = cfg.cluster.len() as u32;
    // Topology-aware: the deepest rank of the configured tree, not the
    // binomial popcount rule.
    let last = cfg.cluster.topology.schedule(cfg.root, n).last_node();
    (0..n)
        .map(|rank| {
            let role = if rank == cfg.root && n > 1 {
                LatRole::Root { last }
            } else if rank == last && n > 1 {
                LatRole::Last { root: cfg.root }
            } else {
                LatRole::Other
            };
            LatencyProgram {
                role,
                elems: cfg.elems,
                iters: cfg.iters,
                pings: cfg.pings,
                root: cfg.root,
                ping: 0,
                iter: 0,
                phase: 0,
                t_mark: SimTime::ZERO,
                rtt_sum: 0.0,
                one_way_us: 0.0,
            }
        })
        .collect()
}

fn aggregate_latency(nodes: Vec<NodeResult>) -> LatencyResult {
    let mut lat = Accumulator::new();
    let mut one_way = 0.0;
    for node in &nodes {
        for o in &node.obs {
            match o.key {
                "latency_us" => lat.push(o.value),
                "one_way_us" => one_way = o.value,
                _ => {}
            }
        }
    }
    LatencyResult {
        mean_latency_us: lat.mean(),
        one_way_us: one_way,
        signals: nodes.iter().map(|n| n.signals_raised).sum(),
        nodes,
    }
}

/// Run the latency benchmark.
pub fn run_latency(cfg: &LatencyConfig) -> LatencyResult {
    let n = cfg.cluster.len() as u32;
    let programs = latency_programs(cfg);
    match cfg.mode {
        Mode::Baseline => {
            let mut d = DesDriver::new(
                &cfg.cluster,
                |rank, ec: EngineConfig| Engine::new(rank, n, ec),
                programs,
            );
            d.set_faults(&cfg.faults, RelConfig::sim_default());
            d.run_auto();
            aggregate_latency(d.results())
        }
        Mode::Bypass(_) | Mode::SplitPhase | Mode::NicBypass => {
            let delay = match cfg.mode {
                Mode::Bypass(d) => d,
                _ => DelayPolicy::None,
            };
            let nic = matches!(cfg.mode, Mode::NicBypass);
            let mut d = DesDriver::new(
                &cfg.cluster,
                |rank, ec: EngineConfig| {
                    AbEngine::new(
                        rank,
                        n,
                        ec,
                        AbConfig {
                            enabled: true,
                            delay,
                            nic_offload: nic,
                        },
                    )
                },
                programs,
            );
            d.set_faults(&cfg.faults, RelConfig::sim_default());
            d.run_auto();
            aggregate_latency(d.results())
        }
    }
}

// ---------------------------------------------------------------------
// Scale benchmark (events/sec at large rank counts)
// ---------------------------------------------------------------------

/// Which executor [`run_scale_bench`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleExec {
    /// The sequential executor ([`DesDriver::run`]).
    Sequential,
    /// The parallel conservative executor with this many shards
    /// ([`DesDriver::run_sharded`]).
    Sharded(usize),
}

/// One timed scale-benchmark run.
#[derive(Debug, Clone)]
pub struct ScaleRunResult {
    /// Cluster size.
    pub ranks: u32,
    /// DES events processed.
    pub events: u64,
    /// Wall-clock seconds, from driver construction through run completion
    /// (engine construction and lazy schedule builds included — at scale
    /// those *are* the hot path being measured).
    pub wall_secs: f64,
    /// The headline throughput metric.
    pub events_per_sec: f64,
    /// Virtual makespan (µs).
    pub makespan_us: f64,
    /// Mean per-reduction CPU µs (the figure metric, as a sanity anchor).
    pub mean_cpu_us: f64,
    /// Packets delivered.
    pub packets_delivered: u64,
}

/// Time the baseline-engine CPU-utilization workload at `n` ranks and
/// report DES throughput (events/sec).
///
/// `legacy = true` emulates the pre-arena driver for before/after
/// comparisons: type-erased `Box<dyn Program>` programs (a vtable hop per
/// step) and `shared_schedules = false` (every engine builds its own
/// O(n) topology schedule, the per-engine cost that made 64k-rank runs
/// infeasible). `legacy` forces the sequential executor; `exec` picks the
/// executor for the modern path.
pub fn run_scale_bench(n: u32, iters: u64, legacy: bool, exec: ScaleExec) -> ScaleRunResult {
    let cfg = CpuUtilConfig {
        elems: 4,
        max_skew_us: 200,
        iters,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous(n), Mode::Baseline)
    };
    let start = std::time::Instant::now();
    let (events, makespan_us, packets, nodes) = if legacy {
        let programs: Vec<Box<dyn Program>> = cpu_util_programs(&cfg)
            .into_iter()
            .map(|p| Box::new(p) as Box<dyn Program>)
            .collect();
        let mut d = DesDriver::new_tuned(
            &cfg.cluster,
            |rank, ec: EngineConfig| Engine::new(rank, n, ec),
            programs,
            |c| c.shared_schedules = false,
        );
        d.run();
        (
            d.events_processed(),
            d.now().as_us_f64(),
            d.packets_delivered,
            d.results(),
        )
    } else {
        let mut d = DesDriver::new(
            &cfg.cluster,
            |rank, ec: EngineConfig| Engine::new(rank, n, ec),
            cpu_util_programs(&cfg),
        );
        match exec {
            ScaleExec::Sequential => d.run(),
            ScaleExec::Sharded(s) => d.run_sharded(s),
        }
        (
            d.events_processed(),
            d.now().as_us_f64(),
            d.packets_delivered,
            d.results(),
        )
    };
    let wall_secs = start.elapsed().as_secs_f64();
    let mut acc = Accumulator::new();
    for node in &nodes {
        for o in node.obs.iter().filter(|o| o.key == "cpu_util_us") {
            acc.push(o.value);
        }
    }
    ScaleRunResult {
        ranks: n,
        events,
        wall_secs,
        events_per_sec: events as f64 / wall_secs.max(1e-9),
        makespan_us,
        mean_cpu_us: acc.mean(),
        packets_delivered: packets,
    }
}
