/root/repo/target/debug/deps/fig9-93cd877f2204b120.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-93cd877f2204b120: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
