/root/repo/target/debug/deps/gather_scatter_tests-664b52967ab91238.d: crates/mpr/tests/gather_scatter_tests.rs

/root/repo/target/debug/deps/gather_scatter_tests-664b52967ab91238: crates/mpr/tests/gather_scatter_tests.rs

crates/mpr/tests/gather_scatter_tests.rs:
