/root/repo/target/debug/deps/fig7-69b6a177e95c3fc1.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-69b6a177e95c3fc1: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
