/root/repo/target/debug/deps/abr_bench-1e980449ab0b7d51.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/abr_bench-1e980449ab0b7d51: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
