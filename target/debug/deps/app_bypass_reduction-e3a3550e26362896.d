/root/repo/target/debug/deps/app_bypass_reduction-e3a3550e26362896.d: src/lib.rs

/root/repo/target/debug/deps/app_bypass_reduction-e3a3550e26362896: src/lib.rs

src/lib.rs:
