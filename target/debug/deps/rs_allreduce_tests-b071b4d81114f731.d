/root/repo/target/debug/deps/rs_allreduce_tests-b071b4d81114f731.d: crates/mpr/tests/rs_allreduce_tests.rs

/root/repo/target/debug/deps/rs_allreduce_tests-b071b4d81114f731: crates/mpr/tests/rs_allreduce_tests.rs

crates/mpr/tests/rs_allreduce_tests.rs:
