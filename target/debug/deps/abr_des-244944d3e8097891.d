/root/repo/target/debug/deps/abr_des-244944d3e8097891.d: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libabr_des-244944d3e8097891.rlib: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/libabr_des-244944d3e8097891.rmeta: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/event.rs:
crates/des/src/meter.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
