/root/repo/target/debug/deps/heterogeneity_tests-05a17a1da0d3fe35.d: crates/cluster/tests/heterogeneity_tests.rs

/root/repo/target/debug/deps/heterogeneity_tests-05a17a1da0d3fe35: crates/cluster/tests/heterogeneity_tests.rs

crates/cluster/tests/heterogeneity_tests.rs:
