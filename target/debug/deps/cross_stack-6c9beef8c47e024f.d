/root/repo/target/debug/deps/cross_stack-6c9beef8c47e024f.d: tests/cross_stack.rs

/root/repo/target/debug/deps/cross_stack-6c9beef8c47e024f: tests/cross_stack.rs

tests/cross_stack.rs:
