/root/repo/target/debug/deps/nic_and_modes_tests-8361314e2b8bab1b.d: crates/cluster/tests/nic_and_modes_tests.rs

/root/repo/target/debug/deps/nic_and_modes_tests-8361314e2b8bab1b: crates/cluster/tests/nic_and_modes_tests.rs

crates/cluster/tests/nic_and_modes_tests.rs:
