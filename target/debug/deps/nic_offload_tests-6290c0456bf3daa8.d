/root/repo/target/debug/deps/nic_offload_tests-6290c0456bf3daa8.d: crates/core/tests/nic_offload_tests.rs

/root/repo/target/debug/deps/nic_offload_tests-6290c0456bf3daa8: crates/core/tests/nic_offload_tests.rs

crates/core/tests/nic_offload_tests.rs:
