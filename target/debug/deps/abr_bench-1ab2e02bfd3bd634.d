/root/repo/target/debug/deps/abr_bench-1ab2e02bfd3bd634.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libabr_bench-1ab2e02bfd3bd634.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/debug/deps/libabr_bench-1ab2e02bfd3bd634.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
