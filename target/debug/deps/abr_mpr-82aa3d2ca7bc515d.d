/root/repo/target/debug/deps/abr_mpr-82aa3d2ca7bc515d.d: crates/mpr/src/lib.rs crates/mpr/src/charge.rs crates/mpr/src/coll.rs crates/mpr/src/comm.rs crates/mpr/src/engine.rs crates/mpr/src/matchq.rs crates/mpr/src/op.rs crates/mpr/src/request.rs crates/mpr/src/testutil.rs crates/mpr/src/tree.rs crates/mpr/src/types.rs

/root/repo/target/debug/deps/libabr_mpr-82aa3d2ca7bc515d.rlib: crates/mpr/src/lib.rs crates/mpr/src/charge.rs crates/mpr/src/coll.rs crates/mpr/src/comm.rs crates/mpr/src/engine.rs crates/mpr/src/matchq.rs crates/mpr/src/op.rs crates/mpr/src/request.rs crates/mpr/src/testutil.rs crates/mpr/src/tree.rs crates/mpr/src/types.rs

/root/repo/target/debug/deps/libabr_mpr-82aa3d2ca7bc515d.rmeta: crates/mpr/src/lib.rs crates/mpr/src/charge.rs crates/mpr/src/coll.rs crates/mpr/src/comm.rs crates/mpr/src/engine.rs crates/mpr/src/matchq.rs crates/mpr/src/op.rs crates/mpr/src/request.rs crates/mpr/src/testutil.rs crates/mpr/src/tree.rs crates/mpr/src/types.rs

crates/mpr/src/lib.rs:
crates/mpr/src/charge.rs:
crates/mpr/src/coll.rs:
crates/mpr/src/comm.rs:
crates/mpr/src/engine.rs:
crates/mpr/src/matchq.rs:
crates/mpr/src/op.rs:
crates/mpr/src/request.rs:
crates/mpr/src/testutil.rs:
crates/mpr/src/tree.rs:
crates/mpr/src/types.rs:
