/root/repo/target/debug/deps/paper_claims-bad5dd9419505f35.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-bad5dd9419505f35: tests/paper_claims.rs

tests/paper_claims.rs:
