/root/repo/target/debug/deps/abr_cluster-546debdd83b582ce.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/live.rs crates/cluster/src/microbench.rs crates/cluster/src/node.rs crates/cluster/src/program.rs crates/cluster/src/report.rs

/root/repo/target/debug/deps/libabr_cluster-546debdd83b582ce.rlib: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/live.rs crates/cluster/src/microbench.rs crates/cluster/src/node.rs crates/cluster/src/program.rs crates/cluster/src/report.rs

/root/repo/target/debug/deps/libabr_cluster-546debdd83b582ce.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/live.rs crates/cluster/src/microbench.rs crates/cluster/src/node.rs crates/cluster/src/program.rs crates/cluster/src/report.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/live.rs:
crates/cluster/src/microbench.rs:
crates/cluster/src/node.rs:
crates/cluster/src/program.rs:
crates/cluster/src/report.rs:
