/root/repo/target/debug/deps/proptest_mpr-098fb87c63132c96.d: crates/mpr/tests/proptest_mpr.rs

/root/repo/target/debug/deps/proptest_mpr-098fb87c63132c96: crates/mpr/tests/proptest_mpr.rs

crates/mpr/tests/proptest_mpr.rs:
