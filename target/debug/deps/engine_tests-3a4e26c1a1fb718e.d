/root/repo/target/debug/deps/engine_tests-3a4e26c1a1fb718e.d: crates/mpr/tests/engine_tests.rs

/root/repo/target/debug/deps/engine_tests-3a4e26c1a1fb718e: crates/mpr/tests/engine_tests.rs

crates/mpr/tests/engine_tests.rs:
