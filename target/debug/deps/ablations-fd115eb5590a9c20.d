/root/repo/target/debug/deps/ablations-fd115eb5590a9c20.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-fd115eb5590a9c20: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
