/root/repo/target/debug/deps/proptest_gm-61d882e97016d73f.d: crates/gm/tests/proptest_gm.rs

/root/repo/target/debug/deps/proptest_gm-61d882e97016d73f: crates/gm/tests/proptest_gm.rs

crates/gm/tests/proptest_gm.rs:
