/root/repo/target/debug/deps/fig10-79b41f1406aa7c82.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-79b41f1406aa7c82: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
