/root/repo/target/debug/deps/driver_tests-e2c3d53cfc0f923d.d: crates/cluster/tests/driver_tests.rs

/root/repo/target/debug/deps/driver_tests-e2c3d53cfc0f923d: crates/cluster/tests/driver_tests.rs

crates/cluster/tests/driver_tests.rs:
