/root/repo/target/debug/deps/allreduce_split_tests-29e3c716cee20d6c.d: crates/core/tests/allreduce_split_tests.rs

/root/repo/target/debug/deps/allreduce_split_tests-29e3c716cee20d6c: crates/core/tests/allreduce_split_tests.rs

crates/core/tests/allreduce_split_tests.rs:
