/root/repo/target/debug/deps/bcast_tests-0716ba9bd0d60adc.d: crates/core/tests/bcast_tests.rs

/root/repo/target/debug/deps/bcast_tests-0716ba9bd0d60adc: crates/core/tests/bcast_tests.rs

crates/core/tests/bcast_tests.rs:
