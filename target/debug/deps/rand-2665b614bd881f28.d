/root/repo/target/debug/deps/rand-2665b614bd881f28.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-2665b614bd881f28: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
