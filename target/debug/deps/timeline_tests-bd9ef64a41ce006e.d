/root/repo/target/debug/deps/timeline_tests-bd9ef64a41ce006e.d: crates/cluster/tests/timeline_tests.rs

/root/repo/target/debug/deps/timeline_tests-bd9ef64a41ce006e: crates/cluster/tests/timeline_tests.rs

crates/cluster/tests/timeline_tests.rs:
