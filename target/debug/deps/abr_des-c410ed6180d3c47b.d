/root/repo/target/debug/deps/abr_des-c410ed6180d3c47b.d: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/debug/deps/abr_des-c410ed6180d3c47b: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/event.rs:
crates/des/src/meter.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
