/root/repo/target/debug/deps/app_bypass_reduction-fc603a88ab7e35cc.d: src/lib.rs

/root/repo/target/debug/deps/libapp_bypass_reduction-fc603a88ab7e35cc.rlib: src/lib.rs

/root/repo/target/debug/deps/libapp_bypass_reduction-fc603a88ab7e35cc.rmeta: src/lib.rs

src/lib.rs:
