/root/repo/target/debug/deps/proptest_des-5380302701d39981.d: crates/des/tests/proptest_des.rs

/root/repo/target/debug/deps/proptest_des-5380302701d39981: crates/des/tests/proptest_des.rs

crates/des/tests/proptest_des.rs:
