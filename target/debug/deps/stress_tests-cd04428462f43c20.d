/root/repo/target/debug/deps/stress_tests-cd04428462f43c20.d: crates/mpr/tests/stress_tests.rs

/root/repo/target/debug/deps/stress_tests-cd04428462f43c20: crates/mpr/tests/stress_tests.rs

crates/mpr/tests/stress_tests.rs:
