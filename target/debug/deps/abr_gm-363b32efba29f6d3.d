/root/repo/target/debug/deps/abr_gm-363b32efba29f6d3.d: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

/root/repo/target/debug/deps/abr_gm-363b32efba29f6d3: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

crates/gm/src/lib.rs:
crates/gm/src/cost.rs:
crates/gm/src/live.rs:
crates/gm/src/memory.rs:
crates/gm/src/nic.rs:
crates/gm/src/packet.rs:
crates/gm/src/signal.rs:
