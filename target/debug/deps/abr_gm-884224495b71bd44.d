/root/repo/target/debug/deps/abr_gm-884224495b71bd44.d: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

/root/repo/target/debug/deps/libabr_gm-884224495b71bd44.rlib: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

/root/repo/target/debug/deps/libabr_gm-884224495b71bd44.rmeta: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

crates/gm/src/lib.rs:
crates/gm/src/cost.rs:
crates/gm/src/live.rs:
crates/gm/src/memory.rs:
crates/gm/src/nic.rs:
crates/gm/src/packet.rs:
crates/gm/src/signal.rs:
