/root/repo/target/debug/deps/rand-bd9239a6fe82b849.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bd9239a6fe82b849.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-bd9239a6fe82b849.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
