/root/repo/target/debug/deps/all_figures-4e54ade415791086.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-4e54ade415791086: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
