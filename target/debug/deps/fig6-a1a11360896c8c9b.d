/root/repo/target/debug/deps/fig6-a1a11360896c8c9b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a1a11360896c8c9b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
