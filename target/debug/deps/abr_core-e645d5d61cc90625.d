/root/repo/target/debug/deps/abr_core-e645d5d61cc90625.d: crates/core/src/lib.rs crates/core/src/bcast.rs crates/core/src/delay.rs crates/core/src/descriptor.rs crates/core/src/engine.rs crates/core/src/stats.rs crates/core/src/unexpected.rs

/root/repo/target/debug/deps/libabr_core-e645d5d61cc90625.rlib: crates/core/src/lib.rs crates/core/src/bcast.rs crates/core/src/delay.rs crates/core/src/descriptor.rs crates/core/src/engine.rs crates/core/src/stats.rs crates/core/src/unexpected.rs

/root/repo/target/debug/deps/libabr_core-e645d5d61cc90625.rmeta: crates/core/src/lib.rs crates/core/src/bcast.rs crates/core/src/delay.rs crates/core/src/descriptor.rs crates/core/src/engine.rs crates/core/src/stats.rs crates/core/src/unexpected.rs

crates/core/src/lib.rs:
crates/core/src/bcast.rs:
crates/core/src/delay.rs:
crates/core/src/descriptor.rs:
crates/core/src/engine.rs:
crates/core/src/stats.rs:
crates/core/src/unexpected.rs:
