/root/repo/target/debug/deps/ab_tests-82c889ac114013af.d: crates/core/tests/ab_tests.rs

/root/repo/target/debug/deps/ab_tests-82c889ac114013af: crates/core/tests/ab_tests.rs

crates/core/tests/ab_tests.rs:
