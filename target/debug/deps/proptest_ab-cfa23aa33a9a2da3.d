/root/repo/target/debug/deps/proptest_ab-cfa23aa33a9a2da3.d: crates/core/tests/proptest_ab.rs

/root/repo/target/debug/deps/proptest_ab-cfa23aa33a9a2da3: crates/core/tests/proptest_ab.rs

crates/core/tests/proptest_ab.rs:
