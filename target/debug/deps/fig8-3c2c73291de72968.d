/root/repo/target/debug/deps/fig8-3c2c73291de72968.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-3c2c73291de72968: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
