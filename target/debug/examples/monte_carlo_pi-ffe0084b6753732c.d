/root/repo/target/debug/examples/monte_carlo_pi-ffe0084b6753732c.d: examples/monte_carlo_pi.rs

/root/repo/target/debug/examples/monte_carlo_pi-ffe0084b6753732c: examples/monte_carlo_pi.rs

examples/monte_carlo_pi.rs:
