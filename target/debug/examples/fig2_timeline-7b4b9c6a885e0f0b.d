/root/repo/target/debug/examples/fig2_timeline-7b4b9c6a885e0f0b.d: examples/fig2_timeline.rs

/root/repo/target/debug/examples/fig2_timeline-7b4b9c6a885e0f0b: examples/fig2_timeline.rs

examples/fig2_timeline.rs:
