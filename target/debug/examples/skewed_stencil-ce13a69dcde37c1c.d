/root/repo/target/debug/examples/skewed_stencil-ce13a69dcde37c1c.d: examples/skewed_stencil.rs

/root/repo/target/debug/examples/skewed_stencil-ce13a69dcde37c1c: examples/skewed_stencil.rs

examples/skewed_stencil.rs:
