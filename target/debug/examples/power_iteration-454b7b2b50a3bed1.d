/root/repo/target/debug/examples/power_iteration-454b7b2b50a3bed1.d: examples/power_iteration.rs

/root/repo/target/debug/examples/power_iteration-454b7b2b50a3bed1: examples/power_iteration.rs

examples/power_iteration.rs:
