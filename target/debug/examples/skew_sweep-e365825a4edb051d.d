/root/repo/target/debug/examples/skew_sweep-e365825a4edb051d.d: examples/skew_sweep.rs

/root/repo/target/debug/examples/skew_sweep-e365825a4edb051d: examples/skew_sweep.rs

examples/skew_sweep.rs:
