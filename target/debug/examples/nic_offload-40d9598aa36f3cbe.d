/root/repo/target/debug/examples/nic_offload-40d9598aa36f3cbe.d: examples/nic_offload.rs

/root/repo/target/debug/examples/nic_offload-40d9598aa36f3cbe: examples/nic_offload.rs

examples/nic_offload.rs:
