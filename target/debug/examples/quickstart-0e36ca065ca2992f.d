/root/repo/target/debug/examples/quickstart-0e36ca065ca2992f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0e36ca065ca2992f: examples/quickstart.rs

examples/quickstart.rs:
