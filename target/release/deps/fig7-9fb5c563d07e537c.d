/root/repo/target/release/deps/fig7-9fb5c563d07e537c.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-9fb5c563d07e537c: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
