/root/repo/target/release/deps/all_figures-e4dcbc2cba157975.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-e4dcbc2cba157975: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
