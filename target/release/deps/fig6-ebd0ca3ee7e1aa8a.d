/root/repo/target/release/deps/fig6-ebd0ca3ee7e1aa8a.d: crates/bench/benches/fig6.rs

/root/repo/target/release/deps/fig6-ebd0ca3ee7e1aa8a: crates/bench/benches/fig6.rs

crates/bench/benches/fig6.rs:
