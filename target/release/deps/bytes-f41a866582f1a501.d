/root/repo/target/release/deps/bytes-f41a866582f1a501.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f41a866582f1a501.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-f41a866582f1a501.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
