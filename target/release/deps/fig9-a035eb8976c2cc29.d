/root/repo/target/release/deps/fig9-a035eb8976c2cc29.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-a035eb8976c2cc29: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
