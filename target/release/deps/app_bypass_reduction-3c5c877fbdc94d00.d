/root/repo/target/release/deps/app_bypass_reduction-3c5c877fbdc94d00.d: src/lib.rs

/root/repo/target/release/deps/app_bypass_reduction-3c5c877fbdc94d00: src/lib.rs

src/lib.rs:
