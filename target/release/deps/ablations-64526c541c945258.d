/root/repo/target/release/deps/ablations-64526c541c945258.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-64526c541c945258: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
