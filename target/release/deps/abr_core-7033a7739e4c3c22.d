/root/repo/target/release/deps/abr_core-7033a7739e4c3c22.d: crates/core/src/lib.rs crates/core/src/bcast.rs crates/core/src/delay.rs crates/core/src/descriptor.rs crates/core/src/engine.rs crates/core/src/stats.rs crates/core/src/unexpected.rs

/root/repo/target/release/deps/libabr_core-7033a7739e4c3c22.rlib: crates/core/src/lib.rs crates/core/src/bcast.rs crates/core/src/delay.rs crates/core/src/descriptor.rs crates/core/src/engine.rs crates/core/src/stats.rs crates/core/src/unexpected.rs

/root/repo/target/release/deps/libabr_core-7033a7739e4c3c22.rmeta: crates/core/src/lib.rs crates/core/src/bcast.rs crates/core/src/delay.rs crates/core/src/descriptor.rs crates/core/src/engine.rs crates/core/src/stats.rs crates/core/src/unexpected.rs

crates/core/src/lib.rs:
crates/core/src/bcast.rs:
crates/core/src/delay.rs:
crates/core/src/descriptor.rs:
crates/core/src/engine.rs:
crates/core/src/stats.rs:
crates/core/src/unexpected.rs:
