/root/repo/target/release/deps/rand-65143337b60447a5.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-65143337b60447a5.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-65143337b60447a5.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
