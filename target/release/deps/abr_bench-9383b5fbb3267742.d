/root/repo/target/release/deps/abr_bench-9383b5fbb3267742.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/abr_bench-9383b5fbb3267742: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
