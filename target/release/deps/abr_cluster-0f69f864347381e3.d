/root/repo/target/release/deps/abr_cluster-0f69f864347381e3.d: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/live.rs crates/cluster/src/microbench.rs crates/cluster/src/node.rs crates/cluster/src/program.rs crates/cluster/src/report.rs

/root/repo/target/release/deps/libabr_cluster-0f69f864347381e3.rlib: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/live.rs crates/cluster/src/microbench.rs crates/cluster/src/node.rs crates/cluster/src/program.rs crates/cluster/src/report.rs

/root/repo/target/release/deps/libabr_cluster-0f69f864347381e3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/driver.rs crates/cluster/src/live.rs crates/cluster/src/microbench.rs crates/cluster/src/node.rs crates/cluster/src/program.rs crates/cluster/src/report.rs

crates/cluster/src/lib.rs:
crates/cluster/src/driver.rs:
crates/cluster/src/live.rs:
crates/cluster/src/microbench.rs:
crates/cluster/src/node.rs:
crates/cluster/src/program.rs:
crates/cluster/src/report.rs:
