/root/repo/target/release/deps/abr_mpr-8b9f2e1277c2cf16.d: crates/mpr/src/lib.rs crates/mpr/src/charge.rs crates/mpr/src/coll.rs crates/mpr/src/comm.rs crates/mpr/src/engine.rs crates/mpr/src/matchq.rs crates/mpr/src/op.rs crates/mpr/src/request.rs crates/mpr/src/testutil.rs crates/mpr/src/tree.rs crates/mpr/src/types.rs

/root/repo/target/release/deps/libabr_mpr-8b9f2e1277c2cf16.rlib: crates/mpr/src/lib.rs crates/mpr/src/charge.rs crates/mpr/src/coll.rs crates/mpr/src/comm.rs crates/mpr/src/engine.rs crates/mpr/src/matchq.rs crates/mpr/src/op.rs crates/mpr/src/request.rs crates/mpr/src/testutil.rs crates/mpr/src/tree.rs crates/mpr/src/types.rs

/root/repo/target/release/deps/libabr_mpr-8b9f2e1277c2cf16.rmeta: crates/mpr/src/lib.rs crates/mpr/src/charge.rs crates/mpr/src/coll.rs crates/mpr/src/comm.rs crates/mpr/src/engine.rs crates/mpr/src/matchq.rs crates/mpr/src/op.rs crates/mpr/src/request.rs crates/mpr/src/testutil.rs crates/mpr/src/tree.rs crates/mpr/src/types.rs

crates/mpr/src/lib.rs:
crates/mpr/src/charge.rs:
crates/mpr/src/coll.rs:
crates/mpr/src/comm.rs:
crates/mpr/src/engine.rs:
crates/mpr/src/matchq.rs:
crates/mpr/src/op.rs:
crates/mpr/src/request.rs:
crates/mpr/src/testutil.rs:
crates/mpr/src/tree.rs:
crates/mpr/src/types.rs:
