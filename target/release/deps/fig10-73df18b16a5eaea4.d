/root/repo/target/release/deps/fig10-73df18b16a5eaea4.d: crates/bench/benches/fig10.rs

/root/repo/target/release/deps/fig10-73df18b16a5eaea4: crates/bench/benches/fig10.rs

crates/bench/benches/fig10.rs:
