/root/repo/target/release/deps/abr_des-78b30648390a8bdb.d: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/libabr_des-78b30648390a8bdb.rlib: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

/root/repo/target/release/deps/libabr_des-78b30648390a8bdb.rmeta: crates/des/src/lib.rs crates/des/src/event.rs crates/des/src/meter.rs crates/des/src/rng.rs crates/des/src/stats.rs crates/des/src/time.rs

crates/des/src/lib.rs:
crates/des/src/event.rs:
crates/des/src/meter.rs:
crates/des/src/rng.rs:
crates/des/src/stats.rs:
crates/des/src/time.rs:
