/root/repo/target/release/deps/ablations-1971812afa913318.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1971812afa913318: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
