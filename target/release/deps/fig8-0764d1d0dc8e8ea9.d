/root/repo/target/release/deps/fig8-0764d1d0dc8e8ea9.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-0764d1d0dc8e8ea9: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
