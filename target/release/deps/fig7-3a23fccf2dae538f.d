/root/repo/target/release/deps/fig7-3a23fccf2dae538f.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-3a23fccf2dae538f: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
