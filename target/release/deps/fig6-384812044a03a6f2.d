/root/repo/target/release/deps/fig6-384812044a03a6f2.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-384812044a03a6f2: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
