/root/repo/target/release/deps/fig9-801168fe0ac59ceb.d: crates/bench/benches/fig9.rs

/root/repo/target/release/deps/fig9-801168fe0ac59ceb: crates/bench/benches/fig9.rs

crates/bench/benches/fig9.rs:
