/root/repo/target/release/deps/fig6-4ce35b22dd0fad50.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-4ce35b22dd0fad50: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
