/root/repo/target/release/deps/fig10-7c87afca1ec3079d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-7c87afca1ec3079d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
