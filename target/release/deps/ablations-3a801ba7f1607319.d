/root/repo/target/release/deps/ablations-3a801ba7f1607319.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-3a801ba7f1607319: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
