/root/repo/target/release/deps/app_bypass_reduction-e50f1755a04a57bc.d: src/lib.rs

/root/repo/target/release/deps/libapp_bypass_reduction-e50f1755a04a57bc.rlib: src/lib.rs

/root/repo/target/release/deps/libapp_bypass_reduction-e50f1755a04a57bc.rmeta: src/lib.rs

src/lib.rs:
