/root/repo/target/release/deps/abr_gm-21018cee398ace8a.d: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

/root/repo/target/release/deps/libabr_gm-21018cee398ace8a.rlib: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

/root/repo/target/release/deps/libabr_gm-21018cee398ace8a.rmeta: crates/gm/src/lib.rs crates/gm/src/cost.rs crates/gm/src/live.rs crates/gm/src/memory.rs crates/gm/src/nic.rs crates/gm/src/packet.rs crates/gm/src/signal.rs

crates/gm/src/lib.rs:
crates/gm/src/cost.rs:
crates/gm/src/live.rs:
crates/gm/src/memory.rs:
crates/gm/src/nic.rs:
crates/gm/src/packet.rs:
crates/gm/src/signal.rs:
