/root/repo/target/release/deps/fig9-32f8cbbd0ae973c4.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-32f8cbbd0ae973c4: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
