/root/repo/target/release/deps/fig10-6d06266c2c452f03.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-6d06266c2c452f03: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
