/root/repo/target/release/deps/fig8-5ba8174779be4608.d: crates/bench/benches/fig8.rs

/root/repo/target/release/deps/fig8-5ba8174779be4608: crates/bench/benches/fig8.rs

crates/bench/benches/fig8.rs:
