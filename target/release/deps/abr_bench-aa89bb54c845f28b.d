/root/repo/target/release/deps/abr_bench-aa89bb54c845f28b.d: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libabr_bench-aa89bb54c845f28b.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs

/root/repo/target/release/deps/libabr_bench-aa89bb54c845f28b.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
