/root/repo/target/release/deps/serde-a5c76927dd320a31.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a5c76927dd320a31.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-a5c76927dd320a31.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
