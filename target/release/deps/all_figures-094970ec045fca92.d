/root/repo/target/release/deps/all_figures-094970ec045fca92.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-094970ec045fca92: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
