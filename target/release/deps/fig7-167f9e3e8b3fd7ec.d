/root/repo/target/release/deps/fig7-167f9e3e8b3fd7ec.d: crates/bench/benches/fig7.rs

/root/repo/target/release/deps/fig7-167f9e3e8b3fd7ec: crates/bench/benches/fig7.rs

crates/bench/benches/fig7.rs:
