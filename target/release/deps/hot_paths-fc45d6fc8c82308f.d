/root/repo/target/release/deps/hot_paths-fc45d6fc8c82308f.d: crates/bench/benches/hot_paths.rs

/root/repo/target/release/deps/hot_paths-fc45d6fc8c82308f: crates/bench/benches/hot_paths.rs

crates/bench/benches/hot_paths.rs:
