/root/repo/target/release/deps/fig8-4b988145a5ec9f1f.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-4b988145a5ec9f1f: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
